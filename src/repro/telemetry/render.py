"""Terminal rendering of telemetry time series.

Reuses the heat ramp from :mod:`repro.noc.visual` so telemetry output
reads like the existing congestion snapshots — but where ``MeshRenderer``
shows one instant, these helpers show *evolution*: sparklines per channel
and a heatmap-over-time whose rows are sampling intervals and whose
columns are nodes (the Fig. 6 "NI queues back up over time" dynamic, and
the Sec. 3 hot region forming around the MCs, as pictures).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.noc.visual import heat_char
from repro.telemetry.sinks import MemorySink, TelemetrySample

Number = Union[int, float]


def _scalarize(value) -> float:
    """Reduce a channel value to one number (lists/dicts sum their leaves)."""
    if isinstance(value, list):
        return float(sum(_scalarize(v) for v in value))
    if isinstance(value, dict):
        return float(sum(_scalarize(v) for v in value.values()))
    return float(value)


def _samples(source) -> List[TelemetrySample]:
    if isinstance(source, MemorySink):
        return source.samples
    return list(source)


def series_summary(source, channel: str) -> Dict[str, float]:
    """min/mean/max/last over one channel (list channels sum per sample)."""
    values = [
        _scalarize(s.channels[channel])
        for s in _samples(source)
        if channel in s.channels
    ]
    if not values:
        return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0, "last": 0.0}
    return {
        "count": len(values),
        "min": min(values),
        "mean": sum(values) / len(values),
        "max": max(values),
        "last": values[-1],
    }


def series_sparkline(values: Sequence[Number], width: int = 40) -> str:
    """Downsample a series onto ``width`` heat characters."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        # Bucket-mean downsampling keeps spikes visible without aliasing.
        bucketed = []
        for i in range(width):
            lo = i * len(vals) // width
            hi = max(lo + 1, (i + 1) * len(vals) // width)
            chunk = vals[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        vals = bucketed
    peak = max(vals)
    return "".join(heat_char(v, peak) for v in vals)


def summary_table(
    source, channels: Optional[Iterable[str]] = None, width: int = 32
) -> str:
    """One row per channel: min/mean/max/last plus a sparkline."""
    samples = _samples(source)
    if channels is None:
        seen: Dict[str, None] = {}
        for s in samples:
            for name in s.channels:
                seen.setdefault(name)
        channels = list(seen)
    header = (
        f"{'channel':<28s}{'min':>10s}{'mean':>10s}{'max':>10s}"
        f"{'last':>10s}  trend"
    )
    lines = [header]
    for ch in channels:
        summ = series_summary(samples, ch)
        if not summ["count"]:
            continue
        values = [
            _scalarize(s.channels[ch]) for s in samples if ch in s.channels
        ]
        lines.append(
            f"{ch:<28s}{summ['min']:>10.1f}{summ['mean']:>10.1f}"
            f"{summ['max']:>10.1f}{summ['last']:>10.1f}  "
            f"|{series_sparkline(values, width)}|"
        )
    return "\n".join(lines)


def occupancy_heatmap(
    source,
    channel: str,
    mc_nodes: Optional[Iterable[int]] = None,
    max_rows: int = 40,
) -> str:
    """Heatmap-over-time: rows = samples (top = earliest), cols = nodes.

    ``channel`` must hold a per-node list (e.g. ``rep.ni_occ_flits`` or
    ``rep.router_occ``).  MC columns are marked ``M`` in the header so the
    paper's hot region is visually anchored.  Heat is normalized to the
    global peak across the whole series, so rows are comparable in time.
    """
    samples = [s for s in _samples(source) if isinstance(s.get(channel), list)]
    if not samples:
        return f"(no per-node samples for channel {channel!r})"
    if len(samples) > max_rows:
        stride = -(-len(samples) // max_rows)  # ceil; keeps first + spread
        samples = samples[::stride]
    n_nodes = len(samples[0].channels[channel])
    peak = max(
        (max(s.channels[channel]) for s in samples), default=0
    )
    mc_set = set(mc_nodes or [])
    marker = "".join("M" if i in mc_set else "." for i in range(n_nodes))
    lines = [
        f"{channel}  (rows = samples, cols = {n_nodes} nodes, "
        f"peak = {peak})",
        f"{'cycle':>8s}  {marker}",
    ]
    for s in samples:
        row = "".join(heat_char(v, peak) for v in s.channels[channel])
        lines.append(f"{s.cycle:>8d}  {row}")
    return "\n".join(lines)
