"""Telemetry sinks: where periodic samples go.

A sample is a ``(cycle, channels)`` pair where ``channels`` maps dotted
channel names (``"rep.ni_occ_flits"``) to JSON-native values: scalars,
lists (one entry per node/router), or string-keyed dicts (sparse per-node
maps).  Three sinks are provided:

* :class:`MemorySink` — keeps samples in RAM for queries and rendering;
* :class:`JSONLSink` — one JSON object per line, lossless round-trip via
  :func:`load_jsonl`;
* :class:`CSVSink` — flattens lists/dicts into ``name[i]`` / ``name.key``
  columns for spreadsheet-style consumers.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Tuple, Union

Channels = Dict[str, Union[int, float, list, dict]]


@dataclass(frozen=True)
class TelemetrySample:
    """One periodic snapshot of simulator state."""

    cycle: int
    channels: Channels = field(default_factory=dict)

    def get(self, channel: str, default=None):
        return self.channels.get(channel, default)


class TelemetrySink:
    """Interface: receives samples in cycle order."""

    def emit(self, sample: TelemetrySample) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; emit() must not be called after."""


class MemorySink(TelemetrySink):
    """Keeps every sample; the query surface for rendering and tests."""

    def __init__(self) -> None:
        self.samples: List[TelemetrySample] = []

    def emit(self, sample: TelemetrySample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def channels(self) -> List[str]:
        seen: Dict[str, None] = {}
        for s in self.samples:
            for name in s.channels:
                seen.setdefault(name)
        return list(seen)

    def series(self, channel: str) -> Tuple[List[int], List]:
        """(cycles, values) for one channel, skipping samples without it."""
        cycles, values = [], []
        for s in self.samples:
            if channel in s.channels:
                cycles.append(s.cycle)
                values.append(s.channels[channel])
        return cycles, values


class JSONLSink(TelemetrySink):
    """Streams one compact JSON object per sample to a path or file."""

    def __init__(self, path_or_file: Union[str, IO[str]]) -> None:
        if isinstance(path_or_file, str):
            self._fh: IO[str] = open(path_or_file, "w")
            self._owns = True
        else:
            self._fh = path_or_file
            self._owns = False

    def emit(self, sample: TelemetrySample) -> None:
        record = {"cycle": sample.cycle, "channels": sample.channels}
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class CSVSink(TelemetrySink):
    """Flattens samples into a fixed-column CSV.

    The header is taken from the *first* sample (collectors emit a stable
    channel set); later samples missing a column write an empty cell, and
    columns that appear later are dropped — CSV is the lossy convenience
    format, JSONL the lossless one.
    """

    def __init__(self, path_or_file: Union[str, IO[str]]) -> None:
        if isinstance(path_or_file, str):
            self._fh: IO[str] = open(path_or_file, "w", newline="")
            self._owns = True
        else:
            self._fh = path_or_file
            self._owns = False
        self._writer = csv.writer(self._fh)
        self._columns: Optional[List[str]] = None

    @staticmethod
    def _flatten(channels: Channels) -> Dict[str, Union[int, float, str]]:
        flat: Dict[str, Union[int, float, str]] = {}

        def put(name, value):
            if isinstance(value, list):
                for i, v in enumerate(value):
                    put(f"{name}[{i}]", v)
            elif isinstance(value, dict):
                for k, v in value.items():
                    put(f"{name}.{k}", v)
            else:
                flat[name] = value

        for name, value in channels.items():
            put(name, value)
        return flat

    def emit(self, sample: TelemetrySample) -> None:
        flat = self._flatten(sample.channels)
        if self._columns is None:
            self._columns = ["cycle"] + sorted(flat)
            self._writer.writerow(self._columns)
        row = [sample.cycle] + [flat.get(c, "") for c in self._columns[1:]]
        self._writer.writerow(row)

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


def load_jsonl(path: str) -> List[TelemetrySample]:
    """Reload a JSONL telemetry artifact (lossless inverse of JSONLSink)."""
    samples: List[TelemetrySample] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            samples.append(
                TelemetrySample(record["cycle"], record.get("channels", {}))
            )
    return samples


def load_csv(path: str) -> List[TelemetrySample]:
    """Reload a CSV artifact; flattened columns stay flat, cells numeric."""
    samples: List[TelemetrySample] = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            cycle = int(row.pop("cycle"))
            channels: Channels = {}
            for name, cell in row.items():
                if cell == "":
                    continue
                try:
                    channels[name] = int(cell)
                except ValueError:
                    channels[name] = float(cell)
            samples.append(TelemetrySample(cycle, channels))
    return samples
