"""Time-series telemetry and host-side profiling.

The rest of the repo reports *end-of-run aggregates* (``noc/stats.py``) or
per-packet events (``noc/trace.py``).  This subpackage adds the third view
the paper's dynamic argument needs: *periodic snapshots*.  Every ``K``
cycles a :class:`TelemetryCollector` samples per-router buffer occupancy,
per-link utilization over the interval, NI (split-)queue depths,
crossbar-speedup usage, priority/starvation counters, and a rolling
packet-latency window, then hands the sample to pluggable sinks
(in-memory, JSONL, CSV).

Attachment follows the :class:`~repro.noc.trace.PacketTracer` contract:
collectors are opt-in, the collector *pulls* state out of the simulator at
sample time, and the only cost on an untraced hot path is one
``is None`` check per network cycle.

:class:`HostProfiler` covers the other axis — how fast the *simulator*
runs (wall-clock per phase, simulated cycles/sec, events/sec) — so the
perf trajectory of the codebase itself is measurable across PRs.
"""

from repro.telemetry.collector import (
    NetworkProbe,
    SystemProbe,
    TelemetryCollector,
    TelemetrySample,
)
from repro.telemetry.profiler import HostProfiler
from repro.telemetry.render import (
    occupancy_heatmap,
    series_sparkline,
    series_summary,
    summary_table,
)
from repro.telemetry.sinks import (
    CSVSink,
    JSONLSink,
    MemorySink,
    TelemetrySink,
    load_csv,
    load_jsonl,
)

__all__ = [
    "TelemetryCollector",
    "TelemetrySample",
    "NetworkProbe",
    "SystemProbe",
    "HostProfiler",
    "TelemetrySink",
    "MemorySink",
    "JSONLSink",
    "CSVSink",
    "load_jsonl",
    "load_csv",
    "series_summary",
    "series_sparkline",
    "summary_table",
    "occupancy_heatmap",
]
