"""Host-side profiling: how fast is the *simulator* itself?

The ROADMAP's north star ("fast as the hardware allows") needs a
measurement, not a feeling.  :class:`HostProfiler` times named phases of a
run (build / prewarm / warmup / measure), counts work items (simulated
cycles, delivered packets, switched flits), and derives rates such as
simulated cycles per wall-clock second.  It is pure host-side bookkeeping:
it never touches simulated state and costs nothing unless used.

Example::

    prof = HostProfiler()
    with prof.phase("build"):
        system = build_system(spec)
    with prof.phase("measure"):
        system.run(cycles)
    prof.count("cycles", cycles)
    print(prof.summary())   # {"phases": {...}, "rates": {"cycles_per_sec": ...}}
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class HostProfiler:
    """Wall-clock phase timing plus work counters and derived rates."""

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}      # name -> accumulated seconds
        self.phase_calls: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}
        self._created = time.perf_counter()  # det: allow(det-wallclock)

    # -- phases ------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block; re-entering the same name accumulates."""
        start = time.perf_counter()  # det: allow(det-wallclock)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start  # det: allow(det-wallclock)
            self.phases[name] = self.phases.get(name, 0.0) + elapsed
            self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    def add_phase_time(self, name: str, seconds: float) -> None:
        """Fold externally-measured time into a phase (e.g. bench harness)."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds
        self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    # -- counters ----------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # -- queries -----------------------------------------------------------
    def phase_seconds(self, name: str) -> float:
        return self.phases.get(name, 0.0)

    def total_seconds(self) -> float:
        return sum(self.phases.values())

    def rate(self, counter: str, phase: Optional[str] = None) -> float:
        """``counter`` items per second of ``phase`` (or of all phases)."""
        elapsed = self.phase_seconds(phase) if phase else self.total_seconds()
        if elapsed <= 0.0:
            return 0.0
        return self.counters.get(counter, 0) / elapsed

    def summary(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready snapshot: per-phase seconds, counters, derived rates.

        Every counter gets an ``<name>_per_sec`` rate against the
        ``measure`` phase if present, else against total phase time.
        """
        rate_phase = "measure" if "measure" in self.phases else None
        rates = {
            f"{name}_per_sec": self.rate(name, rate_phase)
            for name in self.counters
        }
        return {
            "phases": dict(self.phases),
            "counters": dict(self.counters),
            "rates": rates,
        }

    def format(self) -> str:
        """Human-readable two-column report."""
        lines = ["phase              seconds"]
        for name, secs in sorted(self.phases.items()):
            lines.append(f"{name:<18s}{secs:>9.3f}")
        if self.counters:
            lines.append("")
            lines.append("rate                         /sec")
            summary = self.summary()
            for name, value in sorted(summary["rates"].items()):
                lines.append(f"{name:<24s}{value:>12,.0f}")
        return "\n".join(lines)
