"""The sampling layer: periodic snapshots of live simulator state.

A :class:`TelemetryCollector` owns an interval ``K``, a set of *probes*
(objects that read simulator state and return a flat channel dict) and a
set of sinks.  Attachment mirrors :class:`~repro.noc.trace.PacketTracer`:

* ``collector.attach_network(net, prefix)`` registers a
  :class:`NetworkProbe` and sets ``net.telemetry = collector``; the only
  hot-path cost for an un-instrumented network stays a single
  ``is None`` check in ``Network.step``.
* ``collector.attach_system(system)`` instruments both networks (prefixes
  ``"req"`` / ``"rep"``) plus GPU-level counters (prefix ``"sys"``).

Probes are *pull*-based: no simulator component records anything extra per
cycle; at sample time the probe reads maintained state (occupancy
counters, cumulative link/router counters) and differences cumulative
values against the previous sample to get per-interval figures.  Because
probes only read state the simulator maintains anyway, sampling composes
with any simulation kernel: the activity kernel keeps all maintained
counters byte-identical to the reference loop, so a telemetry stream is
the same under either ``kernel=``.  The one
push-based channel is the rolling packet-latency window, fed by chaining
the network's existing ``on_delivery`` callback — again the
:class:`PacketTracer` contract.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.noc.histogram import LatencyHistogram
from repro.telemetry.profiler import HostProfiler
from repro.telemetry.sinks import (
    Channels,
    MemorySink,
    TelemetrySample,
    TelemetrySink,
)


class NetworkProbe:
    """Reads one network's state into ``{prefix}.*`` channels.

    Works with any object exposing ``stats``; mesh-level channels
    (per-router occupancy, link utilization, NI depths) appear only when
    the corresponding attributes exist, so overlay fabrics like DA2mesh
    and :class:`PerfectNetwork` degrade to throughput/latency channels.
    """

    def __init__(self, network, prefix: str = "net") -> None:
        self.network = network
        self.prefix = prefix
        self._prev_cycle: Optional[int] = None
        self._prev: Dict[str, int] = {}
        # Rolling latency window, fed by the chained delivery callback.
        self._window: List[int] = []

    # -- delivery hook -----------------------------------------------------
    def on_delivery(self, packet) -> None:
        lat = packet.latency
        if lat is not None:
            self._window.append(lat)

    # -- helpers -----------------------------------------------------------
    def _delta(self, name: str, cumulative: int) -> int:
        prev = self._prev.get(name, 0)
        self._prev[name] = cumulative
        return cumulative - prev

    @staticmethod
    def _link_flits(links) -> int:
        return sum(l.flits_carried for l in links)

    # -- sampling ----------------------------------------------------------
    def collect(self, now: int) -> Channels:
        net = self.network
        p = self.prefix
        elapsed = now - self._prev_cycle if self._prev_cycle is not None else 0
        self._prev_cycle = now

        out: Channels = {}
        stats = getattr(net, "stats", None)
        if stats is not None:
            out[f"{p}.offered"] = self._delta("offered", stats.packets_offered)
            out[f"{p}.delivered"] = self._delta(
                "delivered", stats.packets_delivered
            )
            out[f"{p}.in_flight"] = stats.in_flight

        routers = getattr(net, "routers", None)
        if routers is not None:
            out[f"{p}.router_occ"] = [r.occupancy() for r in routers]
            out[f"{p}.starvation_demotions"] = self._delta(
                "starve", sum(r.starvation_demotions for r in routers)
            )
            out[f"{p}.priority_decays"] = self._delta(
                "decay", sum(r.priority_decays for r in routers)
            )
            out[f"{p}.speedup_extra_flits"] = self._delta(
                "speedup", sum(r.speedup_extra_flits for r in routers)
            )

        nis = getattr(net, "nis", None)
        if nis is not None:
            out[f"{p}.ni_occ_flits"] = [ni.queued_flits() for ni in nis]
            out[f"{p}.ni_occ_pkts"] = [ni.queued_packets() for ni in nis]
            split = {
                str(node): depths
                for node, ni in enumerate(nis)
                for depths in [ni.queue_depths()]
                if len(depths) > 1
            }
            if split:
                out[f"{p}.split_q_depths"] = split

        mesh_links = getattr(net, "mesh_links", None)
        if mesh_links is not None:
            carried = self._delta("mesh_flits", self._link_flits(mesh_links))
            denom = len(mesh_links) * elapsed
            out[f"{p}.mesh_link_util"] = carried / denom if denom else 0.0
        inj_links = getattr(net, "injection_links", None)
        if inj_links is not None:
            carried = self._delta("inj_flits", self._link_flits(inj_links))
            denom = len(inj_links) * elapsed
            out[f"{p}.inj_link_util"] = carried / denom if denom else 0.0

        window = self._window
        out[f"{p}.lat_count"] = len(window)
        if window:
            hist = LatencyHistogram()
            hist.record_many(window)
            out[f"{p}.lat_mean"] = hist.mean
            out[f"{p}.lat_p95"] = hist.p95
            window.clear()
        else:
            out[f"{p}.lat_mean"] = 0.0
            out[f"{p}.lat_p95"] = 0.0
        return out


class SystemProbe:
    """GPU-level channels (``sys.*``): issue progress and MC reply stalls."""

    def __init__(self, system, prefix: str = "sys") -> None:
        self.system = system
        self.prefix = prefix
        self._prev: Dict[str, int] = {}

    def _delta(self, name: str, cumulative: int) -> int:
        prev = self._prev.get(name, 0)
        self._prev[name] = cumulative
        return cumulative - prev

    def collect(self, now: int) -> Channels:
        sysm = self.system
        p = self.prefix
        return {
            f"{p}.instructions": self._delta(
                "instr", sum(c.stats.instructions for c in sysm.cores)
            ),
            f"{p}.mc_stall_cycles": self._delta(
                "stall", sum(m.stats.stall_cycles for m in sysm.mcs)
            ),
            f"{p}.replies_sent": self._delta(
                "replies", sum(m.stats.replies_sent for m in sysm.mcs)
            ),
            f"{p}.mc_reply_backlog": sum(
                len(m.reply_queue) for m in sysm.mcs
            ),
        }


class TelemetryCollector:
    """Samples all registered probes every ``interval`` cycles.

    ``on_cycle(now)`` is the hook simulators call once per cycle when a
    collector is attached; it is cycle-deduplicated so a collector shared
    by several components on one clock (request net, reply net, the GPU
    system) still samples each interval exactly once.
    """

    def __init__(
        self,
        interval: int = 100,
        sinks: Optional[Sequence[TelemetrySink]] = None,
        profiler: Optional[HostProfiler] = None,
    ) -> None:
        if interval < 1:
            raise ValueError("telemetry interval must be >= 1 cycle")
        self.interval = interval
        self.sinks: List[TelemetrySink] = (
            list(sinks) if sinks is not None else [MemorySink()]
        )
        self.profiler = profiler if profiler is not None else HostProfiler()
        self.probes: List[object] = []
        self.samples_taken = 0
        self._last_cycle: Optional[int] = None

    # -- probe / sink management -------------------------------------------
    def add_probe(self, probe) -> None:
        """Register any object with ``collect(now) -> Channels``."""
        self.probes.append(probe)

    def add_sink(self, sink: TelemetrySink) -> None:
        self.sinks.append(sink)

    @property
    def memory(self) -> Optional[MemorySink]:
        """The first in-memory sink, if any (rendering convenience)."""
        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return sink
        return None

    # -- attachment ----------------------------------------------------------
    def attach_network(
        self, network, prefix: str = "net", drive: bool = True
    ) -> NetworkProbe:
        """Instrument one network; returns the registered probe.

        ``drive=False`` registers the probe without making the network
        call :meth:`on_cycle` — used when a higher-level clock owner (the
        GPGPU system) drives sampling at its own end-of-cycle point.
        """
        probe = NetworkProbe(network, prefix)
        self.add_probe(probe)
        original = getattr(network, "on_delivery", None)

        def chained(node, packet, now, _orig=original, _probe=probe):
            _probe.on_delivery(packet)
            if _orig is not None:
                _orig(node, packet, now)

        network.on_delivery = chained
        if drive:
            network.telemetry = self
        return probe

    def attach_system(self, system) -> None:
        """Instrument a full GPGPU system: both networks + GPU counters.

        The system drives sampling (end of its ``step()``), so snapshots
        see every component after the same whole cycle.
        """
        self.attach_network(system.request_net, "req", drive=False)
        self.attach_network(system.reply_net, "rep", drive=False)
        self.add_probe(SystemProbe(system))
        system.telemetry = self

    # -- sampling ------------------------------------------------------------
    def on_cycle(self, now: int) -> None:
        if now % self.interval:
            return
        if now == self._last_cycle:
            return
        self.sample(now)

    def sample(self, now: int) -> TelemetrySample:
        """Force an immediate sample at cycle ``now``."""
        self._last_cycle = now
        channels: Channels = {}
        for probe in self.probes:
            channels.update(probe.collect(now))
        sample = TelemetrySample(now, channels)
        for sink in self.sinks:
            sink.emit(sample)
        self.samples_taken += 1
        return sample

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
