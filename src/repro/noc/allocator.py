"""Separable input-first allocators with priority-aware arbitration.

The paper's configuration (Table I) uses a separable input-first allocator.
Two pieces are provided:

* :class:`RoundRobinArbiter` — a classic rotating-priority arbiter used for
  fairness among equal-priority requesters.
* :class:`SwitchAllocator` — the two-stage separable allocation:

  1. *input stage*: each input port selects which of its ready VCs bid for
     the crossbar this cycle.  Ordinary ports select one VC; an injection
     port with crossbar speedup ``S`` (ARI, Sec. 4.2) may select up to ``S``
     VCs targeting *distinct* output ports.
  2. *output stage*: each output port grants one of the bidding inputs.

  Both stages compare the ARI priority field first (Sec. 5) and break ties
  round-robin, so the multi-level prioritization composes naturally with
  the base allocator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


class RoundRobinArbiter:
    """Rotating-priority arbiter over ``size`` requesters."""

    __slots__ = ("size", "_next")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("arbiter size must be >= 1")
        self.size = size
        self._next = 0

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one of the asserted requests, rotating after each grant."""
        if len(requests) != self.size:
            raise ValueError("request vector size mismatch")
        for off in range(self.size):
            idx = (self._next + off) % self.size
            if requests[idx]:
                self._next = (idx + 1) % self.size
                return idx
        return None

    def grant_prioritized(
        self, requests: Sequence[Optional[int]]
    ) -> Optional[int]:
        """Grant among requesters carrying integer priorities.

        ``requests[i]`` is ``None`` if requester *i* is idle, otherwise its
        priority (higher wins).  Ties break round-robin from the arbiter
        pointer; the pointer only advances past the granted requester.
        """
        if len(requests) != self.size:
            raise ValueError("request vector size mismatch")
        best_idx: Optional[int] = None
        best_prio = -1
        for off in range(self.size):
            idx = (self._next + off) % self.size
            prio = requests[idx]
            if prio is None:
                continue
            if prio > best_prio:
                best_prio = prio
                best_idx = idx
        if best_idx is not None:
            self._next = (best_idx + 1) % self.size
        return best_idx


class Bid:
    """One switch-allocation request from (input port, VC) to an output."""

    __slots__ = ("in_port", "vc", "out_port", "priority")

    def __init__(self, in_port: int, vc: int, out_port: int, priority: int) -> None:
        self.in_port = in_port
        self.vc = vc
        self.out_port = out_port
        self.priority = priority

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Bid(p{self.in_port}.vc{self.vc} -> out{self.out_port}, "
            f"prio={self.priority})"
        )


class SwitchAllocator:
    """Two-stage separable input-first switch allocator.

    Parameters
    ----------
    num_in, num_out:
        Port counts of the crossbar.
    num_vcs:
        VCs per input port (sizes the input-stage arbiters).
    speedups:
        Per-input-port crossbar speedup (number of switch ports assigned to
        that input).  Defaults to 1 everywhere; ARI raises the injection
        port's entry.
    """

    def __init__(
        self,
        num_in: int,
        num_out: int,
        num_vcs: int,
        speedups: Optional[Dict[int, int]] = None,
    ) -> None:
        self.num_in = num_in
        self.num_out = num_out
        self.num_vcs = num_vcs
        self.speedups = dict(speedups or {})
        self._input_arbiters = [RoundRobinArbiter(num_vcs) for _ in range(num_in)]
        self._output_arbiters = [RoundRobinArbiter(num_in) for _ in range(num_out)]

    def speedup_of(self, in_port: int) -> int:
        return self.speedups.get(in_port, 1)

    # ------------------------------------------------------------------
    def allocate(self, bids: Iterable[Bid]) -> List[Bid]:
        """Resolve one cycle of switch allocation; returns the winning bids.

        Guarantees:
        * each input port wins at most ``speedup`` grants, on distinct
          output ports;
        * each output port grants at most one input;
        * higher :attr:`Bid.priority` wins at both stages, ties round-robin.
        """
        by_input: Dict[int, List[Bid]] = {}
        for bid in bids:
            if not (0 <= bid.in_port < self.num_in):
                raise ValueError(f"bad input port {bid.in_port}")
            if not (0 <= bid.out_port < self.num_out):
                raise ValueError(f"bad output port {bid.out_port}")
            by_input.setdefault(bid.in_port, []).append(bid)

        # -- stage 1: input selection ---------------------------------
        stage1: List[Bid] = []
        for in_port, port_bids in by_input.items():
            budget = self.speedup_of(in_port)
            arb = self._input_arbiters[in_port]
            chosen_outs: set = set()
            remaining = list(port_bids)
            for _ in range(budget):
                # Build a per-VC request vector (highest-priority bid per VC).
                vec: List[Optional[int]] = [None] * self.num_vcs
                vc_bid: Dict[int, Bid] = {}
                for b in remaining:
                    if b.out_port in chosen_outs:
                        continue
                    cur = vec[b.vc]
                    if cur is None or b.priority > cur:
                        vec[b.vc] = b.priority
                        vc_bid[b.vc] = b
                win_vc = arb.grant_prioritized(vec)
                if win_vc is None:
                    break
                winner = vc_bid[win_vc]
                stage1.append(winner)
                chosen_outs.add(winner.out_port)
                remaining = [b for b in remaining if b.vc != win_vc]

        # -- stage 2: output arbitration -------------------------------
        by_output: Dict[int, List[Bid]] = {}
        for bid in stage1:
            by_output.setdefault(bid.out_port, []).append(bid)

        winners: List[Bid] = []
        for out_port, port_bids in by_output.items():
            arb = self._output_arbiters[out_port]
            vec: List[Optional[int]] = [None] * self.num_in
            in_bid: Dict[int, Bid] = {}
            for b in port_bids:
                cur = vec[b.in_port]
                if cur is None or b.priority > cur:
                    vec[b.in_port] = b.priority
                    in_bid[b.in_port] = b
            win_in = arb.grant_prioritized(vec)
            if win_in is not None:
                winners.append(in_bid[win_in])
        return winners
