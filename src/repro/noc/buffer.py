"""Virtual-channel input buffers.

Each router input port holds ``num_vcs`` virtual channels.  A VC is a FIFO of
flits plus the wormhole switching state of the packet currently at its front:

``IDLE``     — empty, or next packet's head not yet at the front.
``ROUTING``  — a head flit is at the front and needs route computation.
``VA``       — routed; waiting for an output VC to be allocated.
``ACTIVE``   — output port + VC held; flits drain through switch allocation.

Non-atomic buffer allocation (Whole Packet Forwarding, [Ma HPCA'12], used by
the paper for both XY and adaptive routing) allows a VC that already holds
flits of one packet to accept a *whole* subsequent packet, provided the free
space can hold all of it.  The admission check lives in
:meth:`VirtualChannel.can_accept_packet` (local side) and is mirrored by the
upstream credit counter check in the VC allocator.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional

from repro.noc.flit import Flit


class VCState(enum.IntEnum):
    IDLE = 0
    ROUTING = 1
    VA = 2
    ACTIVE = 3


class VirtualChannel:
    """One virtual channel: a flit FIFO plus per-front-packet route state."""

    __slots__ = (
        "index",
        "capacity",
        "fifo",
        "state",
        "out_port",
        "out_vc",
        "wait_since",
        "candidates",
        "escape",
    )

    def __init__(self, index: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("VC capacity must be >= 1")
        self.index = index
        self.capacity = capacity
        self.fifo: Deque[Flit] = deque()
        self.state = VCState.IDLE
        self.out_port: Optional[int] = None
        self.out_vc: Optional[int] = None
        # Cycle at which the current front flit became ready; used by the
        # ARI starvation threshold (Sec. 5).
        self.wait_since: Optional[int] = None
        # Route-computation results for the packet at the front (set while
        # in ROUTING/VA; adaptive routing keeps several candidates).
        self.candidates: Optional[list] = None
        self.escape: Optional[int] = None

    # -- capacity ------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self.fifo)

    @property
    def free_space(self) -> int:
        return self.capacity - len(self.fifo)

    @property
    def empty(self) -> bool:
        return not self.fifo

    def can_accept_packet(self, size: int) -> bool:
        """WPF admission: the whole packet must fit in the free space."""
        return self.free_space >= size

    # -- enqueue / dequeue ---------------------------------------------
    def push(self, flit: Flit, now: int) -> None:
        if self.free_space <= 0:
            raise RuntimeError(f"VC {self.index} overflow")
        flit.vc = self.index
        self.fifo.append(flit)
        if len(self.fifo) == 1:
            self._on_new_front(now)

    def front(self) -> Optional[Flit]:
        return self.fifo[0] if self.fifo else None

    def pop(self, now: int) -> Flit:
        """Remove the front flit (it won switch allocation)."""
        if not self.fifo:
            raise RuntimeError(f"VC {self.index} underflow")
        flit = self.fifo.popleft()
        if flit.is_tail:
            # Packet fully drained from this VC: release route state so the
            # next packet (if buffered behind, WPF) restarts at ROUTING.
            self.out_port = None
            self.out_vc = None
            self.candidates = None
            self.escape = None
            self.state = VCState.IDLE
        if self.fifo:
            self._on_new_front(now)
        elif not flit.is_tail:
            # Body flits still upstream; stay ACTIVE with the held route.
            self.wait_since = None
        else:
            self.wait_since = None
        return flit

    def _on_new_front(self, now: int) -> None:
        front = self.fifo[0]
        self.wait_since = now
        if front.is_head:
            if self.state == VCState.ACTIVE and self.out_port is not None:
                # A fresh head behind a still-draining packet cannot start
                # until the tail releases the VC (handled in pop()).
                return
            self.state = VCState.ROUTING
        else:
            # Body/tail flit of the active packet.
            if self.out_port is None:
                raise RuntimeError("body flit at VC front without a route")
            self.state = VCState.ACTIVE

    # -- pipeline state transitions --------------------------------------
    def set_route(self, out_port: int) -> None:
        if self.state != VCState.ROUTING:
            raise RuntimeError(f"set_route in state {self.state!r}")
        self.out_port = out_port
        front = self.fifo[0]
        front.out_port = out_port
        self.state = VCState.VA

    def set_out_vc(self, out_vc: int) -> None:
        if self.state != VCState.VA:
            raise RuntimeError(f"set_out_vc in state {self.state!r}")
        self.out_vc = out_vc
        front = self.fifo[0]
        front.out_vc = out_vc
        self.state = VCState.ACTIVE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VC(idx={self.index}, occ={self.occupancy}/{self.capacity},"
            f" state={self.state.name})"
        )


class InputPort:
    """A router input port: a set of VCs sharing one physical input link."""

    __slots__ = ("port_id", "vcs", "is_injection", "occ")

    def __init__(
        self,
        port_id: int,
        num_vcs: int,
        vc_capacity: int,
        is_injection: bool = False,
    ) -> None:
        self.port_id = port_id
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(i, vc_capacity) for i in range(num_vcs)
        ]
        self.is_injection = is_injection
        # Flit count across all VCs, maintained by the owning router (hot
        # loop avoids re-summing every cycle).
        self.occ = 0

    @property
    def num_vcs(self) -> int:
        return len(self.vcs)

    def total_occupancy(self) -> int:
        return sum(vc.occupancy for vc in self.vcs)

    def oldest_wait(self, now: int) -> int:
        """Longest time any front flit in this port has been waiting."""
        waits = [
            now - vc.wait_since
            for vc in self.vcs
            if vc.wait_since is not None and vc.fifo
        ]
        return max(waits, default=0)
