"""Simulation kernels: pluggable per-cycle advance loops for :class:`Network`.

A :class:`SimKernel` owns the order in which a network's components are
visited each cycle.  Two backends ship:

:class:`ReferenceKernel`
    The oracle.  Visits every NI, router and ejection link every cycle, in
    index order — exactly the historical ``Network.step()`` loop.  All
    results (stats, telemetry, invariants) are defined by this kernel.

:class:`ActivityKernel`
    Byte-identical results, less work.  Only *active* components are
    visited: routers holding flits stay in a live set (their VC-allocation
    round-robin pointer must rotate every occupied cycle, so they cannot be
    skipped without changing arbitration); quiescent routers are visited
    only on scheduled wakeups — when an upstream router or NI put flits on
    a link terminating at them.  NIs are live while they hold queued or
    pending packets; ``Network.offer`` re-arms them through the kernel's
    ``on_offer`` hook.  Credit returns to a sleeping router need *no*
    wakeup: :meth:`CreditChannel.deliver` flushes everything due at-or-
    before the wake cycle, and nothing observes a sleeping router's credit
    counters in between.  Forced work that must happen on schedule — the
    ``sample_interval`` NI occupancy sample, telemetry's ``on_cycle``, the
    deadlock watchdog — runs every cycle in both kernels.  When a fault
    injector or invariant auditor is installed the kernel falls back to
    full reference-order visiting (those hooks may mutate or inspect any
    component on any cycle), so campaigns trade speed for exactness.

Selection: ``Network(cfg, kernel="activity")``, or the ``REPRO_KERNEL``
environment variable when no explicit kernel is given; the default is
``"reference"``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set

KERNELS = ("reference", "activity")

ENV_VAR = "REPRO_KERNEL"


def resolve_kernel(name: Optional[str] = None) -> str:
    """Resolve a kernel name: explicit argument > ``REPRO_KERNEL`` > default."""
    if name is None:
        name = os.environ.get(ENV_VAR) or "reference"
    name = str(name).strip().lower()
    if name not in KERNELS:
        raise ValueError(
            f"unknown simulation kernel {name!r}; choose one of {KERNELS}"
        )
    return name


def make_kernel(name: Optional[str] = None) -> "SimKernel":
    """Build the kernel backend for ``name`` (resolved via :func:`resolve_kernel`)."""
    resolved = resolve_kernel(name)
    if resolved == "activity":
        return ActivityKernel()
    return ReferenceKernel()


class SimKernel:
    """Backend interface: owns one network's per-cycle advance loop."""

    name = "abstract"

    def bind(self, net) -> None:
        """Called once from ``Network.__init__`` after wiring completes."""

    def cycle(self, net) -> None:
        """Advance ``net`` by one cycle (must end by incrementing ``net.now``)."""
        raise NotImplementedError

    def on_offer(self, node: int) -> None:
        """A packet was accepted by ``node``'s NI (activity re-arm hook)."""


class ReferenceKernel(SimKernel):
    """Visit everything, every cycle, in index order — the oracle loop."""

    name = "reference"

    def bind(self, net) -> None:
        self._deadlock_cycles = net.config.deadlock_cycles
        self._sample_interval = net.config.sample_interval

    def cycle(self, net) -> None:
        now = net.now
        f = net.faults
        if f is not None:
            # Apply scheduled fault/repair events *before* anything moves
            # this cycle, so routers never allocate into a freshly dead
            # resource within the same cycle.  The activity kernel falls
            # back to full reference cycles whenever faults are
            # installed, so this hook is outside the gated fast path.
            f.on_cycle(now)  # kernel: unreached
        sent = 0
        for ni in net.nis:
            sent += ni.step(now)
        moved = 0
        for router in net.routers:
            moved += router.step(now)
        ejectors = net.ejectors
        for r, link in enumerate(net.ejection_links):
            ejector = ejectors[r]
            for flit in link.arrivals(now):
                ejector.receive_flit(flit, now)
        if moved or sent:
            net._last_progress = now
        if (
            net.stats.in_flight > 0
            and now - net._last_progress > self._deadlock_cycles
        ):
            net._no_progress(now)
        if now % self._sample_interval == 0:
            for ni in net.nis:
                ni.sample()
        a = net.auditor
        if a is not None:
            # End-of-cycle audit: every router/NI has settled, so the
            # flow-control invariants must hold exactly here.  Like the
            # fault hook above, an installed auditor forces the activity
            # kernel into reference fallback.
            a.on_cycle(now)  # kernel: unreached
        t = net.telemetry
        if t is not None:
            t.on_cycle(now)
        net.now = now + 1
        net.stats.cycles = net.now


class ActivityKernel(SimKernel):
    """Activity-gated stepping: skip quiescent routers and NIs entirely.

    Activity sets and wake rules (all times in network cycles):

    * a router is **live** while it buffers any flit (``_occ > 0``) — its
      VA round-robin pointer rotates every occupied cycle, so skipping it
      would change arbitration and break byte-identity;
    * a router that switched flits wakes its four mesh neighbours at
      ``now + link_latency`` (flit ingestion must happen on the exact
      arrival cycle) and joins the ejection-drain set until its ejection
      link is empty;
    * an NI is **live** while :meth:`InjectionInterface.has_work` holds;
      an NI that sent flits wakes its router at ``now + 1`` (injection
      links have unit latency); ``Network.offer`` re-arms the NI via
      :meth:`on_offer`;
    * credit channels never schedule wakeups — delivery catches up on the
      receiver's next wake before anything reads its counters;
    * per-cycle obligations (NI occupancy sampling every
      ``sample_interval``, telemetry, the deadlock watchdog) run exactly
      as in the reference kernel.

    When ``net.faults`` or ``net.auditor`` is installed the kernel runs
    full reference cycles instead (those hooks may touch any component on
    any cycle); it rebuilds its activity sets from network state if the
    hooks are ever removed again.
    """

    name = "activity"

    def bind(self, net) -> None:
        self._deadlock_cycles = net.config.deadlock_cycles
        self._sample_interval = net.config.sample_interval
        self._lat = net.config.link_latency
        # With unit link latency every wakeup (flit arrival, credit
        # return — CreditChannel latency is fixed at 1) lands exactly one
        # cycle after its cause, so a visited router *not* in the due set
        # provably has nothing arriving and skips ingest entirely.
        self._unit = net.config.link_latency == 1
        topo = net.topology
        neighbors: List[tuple] = []
        adj: Dict[int, List[int]] = {r: [] for r in range(topo.num_routers)}
        for src, _direction, dst in topo.links():
            adj[src].append(dst)
        for r in range(topo.num_routers):
            neighbors.append(tuple(sorted(adj[r])))
        self._neighbors = neighbors
        self._live: Set[int] = set()
        self._live_nis: Set[int] = set(range(len(net.nis)))
        self._eject_pending: Set[int] = set()
        self._wake: Dict[int, Set[int]] = {}
        # Routers asleep in a proven stall (no move possible until a
        # scheduled wakeup): router id -> cycle the stall was detected.
        # Their VA pointers are fast-forwarded on wake (see _flush/_visit).
        self._stalled: Dict[int, int] = {}
        self._dirty = False
        self._reference = ReferenceKernel()
        self._reference.bind(net)
        net._on_offer = self.on_offer

    def on_offer(self, node: int) -> None:
        self._live_nis.add(node)

    def sync(self, net) -> None:
        """Catch sleeping routers up with skipped-cycle bookkeeping.

        While a router sleeps in a proven stall the reference pipeline
        would still rotate its VA round-robin pointer once per occupied
        cycle; the rotation is applied arithmetically here.  Called before
        any reference-order processing (fault/auditor fallback) and by the
        equivalence harness before diffing internal state.
        """
        stalled = self._stalled
        if not stalled:
            return
        now = net.now
        routers = net.routers
        for r, t0 in stalled.items():
            missed = now - t0 - 1
            if missed > 0:
                router = routers[r]
                router._va_rr = (router._va_rr + missed) % router.num_inputs
        stalled.clear()

    # -- cold-start / fallback-exit rescan --------------------------------
    def _rescan(self, net) -> None:
        """Rebuild activity sets and the wake agenda from network state."""
        self.sync(net)
        now = net.now
        self._live = {
            r for r, router in enumerate(net.routers) if router.occupancy()
        }
        self._live_nis = {
            i for i, ni in enumerate(net.nis) if ni.has_work()
        }
        self._eject_pending = {
            r for r, link in enumerate(net.ejection_links) if link.in_flight
        }
        wake: Dict[int, Set[int]] = {}
        for r, router in enumerate(net.routers):
            for link in router.input_links:
                if link is None:
                    continue
                # SplitNI wiring bundles several links into a composite.
                parts = getattr(link, "links", None)
                for part in parts if parts is not None else (link,):
                    for t in part.pending_arrivals():
                        when = t if t > now else now
                        w = wake.get(when)
                        if w is None:
                            wake[when] = w = set()
                        w.add(r)
        self._wake = wake
        self._dirty = False

    # -- the gated cycle ---------------------------------------------------
    def cycle(self, net) -> None:
        if net.faults is not None or net.auditor is not None:
            # Fault injectors mutate arbitrary components on schedule and
            # auditors inspect every router each cycle: both need the full
            # reference visiting order.  Correctness beats speed here.
            self.sync(net)
            self._reference.cycle(net)  # kernel: fallback
            self._dirty = True
            return
        if self._dirty:
            self._rescan(net)
        now = net.now
        wake = self._wake
        # Almost every wakeup targets the next cycle (unit link/credit
        # latency); keep that set in a local and register it once at the
        # end instead of paying a dict lookup per scheduling site.
        nxt = now + 1
        due_next = wake.get(nxt)
        if due_next is None:
            due_next = set()

        sent = 0
        live_nis = self._live_nis
        if live_nis:
            nis = net.nis
            for i in sorted(live_nis):
                ni = nis[i]
                s = ni.step(now)
                if s:
                    sent += s
                    due_next.add(i)
                if not ni.has_work():
                    live_nis.discard(i)

        moved = 0
        live = self._live
        due = wake.pop(now, None)
        if due:
            visit = sorted(due | live)
        elif live:
            due = ()
            visit = sorted(live)
        else:
            due = ()
            visit = ()
        if visit:
            routers = net.routers
            lat = self._lat
            unit = self._unit
            eject = self._eject_pending
            neighbors = self._neighbors
            stalled = self._stalled
            for r in visit:
                router = routers[r]
                if stalled:
                    t0 = stalled.pop(r, None)
                    if t0 is not None:
                        # Reference would have rotated the VA pointer once
                        # per occupied (slept) cycle; catch up in O(1).
                        missed = now - t0 - 1
                        if missed > 0:
                            router._va_rr = (
                                router._va_rr + missed
                            ) % router.num_inputs
                # A router outside the due set provably has no flit or
                # credit landing this cycle (unit latency: every cause one
                # cycle earlier scheduled a wakeup), so skip ingest.
                m = router.step_fast(now, not unit or r in due)
                if router._occ:
                    if m == 0 and router._stall_ok:
                        # Proven stall: nothing can move until a wakeup.
                        # Arrival wakeups are scheduled by senders; credits
                        # already in flight get their delivery cycles
                        # scheduled here, and credits sent later wake the
                        # sleeper from the mover's branch below.
                        stalled[r] = now
                        live.discard(r)
                        for q, _c in router._fast_wiring[0]:
                            for entry in q:
                                tq = entry[0]
                                if tq == nxt:
                                    due_next.add(r)
                                    continue
                                w = wake.get(tq)
                                if w is None:
                                    wake[tq] = w = set()
                                w.add(r)
                    else:
                        live.add(r)
                else:
                    live.discard(r)
                if m:
                    moved += m
                    eject.add(r)
                    if unit:
                        due_next.update(neighbors[r])
                    else:
                        t = now + lat
                        w = wake.get(t)
                        if w is None:
                            wake[t] = w = set()
                        w.update(neighbors[r])
                        if stalled:
                            # Credit returns ride upstream with unit
                            # latency; sleeping upstream routers must see
                            # them land.
                            for nb in neighbors[r]:
                                if nb in stalled:
                                    due_next.add(nb)
        if due_next:
            wake[nxt] = due_next

        eject = self._eject_pending
        if eject:
            links = net.ejection_links
            ejectors = net.ejectors
            for r in sorted(eject):
                link = links[r]
                for flit in link.arrivals(now):
                    ejectors[r].receive_flit(flit, now)
                if not link.in_flight:
                    eject.discard(r)

        if moved or sent:
            net._last_progress = now
        if (
            net.stats.in_flight > 0
            and now - net._last_progress > self._deadlock_cycles
        ):
            net._no_progress(now)
        if now % self._sample_interval == 0:
            for ni in net.nis:
                ni.sample()
        t = net.telemetry
        if t is not None:
            t.on_cycle(now)
        net.now = now + 1
        net.stats.cycles = net.now
