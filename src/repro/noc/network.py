"""Network assembly and cycle stepping.

:class:`Network` builds a mesh of :class:`~repro.noc.router.Router` objects
from a :class:`NetworkConfig`, wires inter-router links and credit channels,
attaches injection NIs and ejection interfaces to every node, and advances
everything one cycle at a time.

:class:`PerfectNetwork` is an idealized drop-in used by the ARI speedup
sizing rule (Eq. 1): it delivers every packet after its zero-load latency,
modeling "a reply network with unlimited bandwidth" so the raw (supply-
limited) packet injection rate can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.noc.credit import CreditChannel
from repro.noc.flit import Packet
from repro.noc.kernel import SimKernel, make_kernel, resolve_kernel
from repro.noc.link import Link
from repro.noc.ni import (
    EjectionInterface,
    InjectionInterface,
    MultiPortNI,
    NIKind,
    make_ni,
)
from repro.noc.router import Router
from repro.noc.routing import LOCAL, hop_count, make_routing, opposite
from repro.noc.stats import NetworkStats, mean_link_utilization
from repro.noc.topology import MeshTopology


class DeadlockError(RuntimeError):
    """Raised when in-flight traffic makes no progress for too long."""


@dataclass
class NetworkConfig:
    """Configuration of one physical network (request or reply).

    The defaults follow Table I of the paper: 6x6 mesh, 4 VCs per port with
    one (long) packet of buffering each, 36-flit NI injection queues, XY
    routing, no ARI features.
    """

    width: int = 6
    height: int = 6
    num_vcs: int = 4
    vc_capacity: int = 9          # one long packet per VC (Table I)
    routing: str = "xy"
    ni_queue_flits: int = 36
    link_latency: int = 1

    # --- ARI / comparison-scheme knobs (apply to `accelerated_nodes`) ----
    accelerated_nodes: Set[int] = field(default_factory=set)
    ni_kind: NIKind = NIKind.ENHANCED           # NI of accelerated nodes
    num_split_queues: int = 4                   # SplitNI queue count
    injection_speedup: int = 1                  # crossbar speedup at MC-routers
    num_injection_ports: int = 1                # MultiPort scheme
    priority_enabled: bool = False
    priority_levels: int = 1                    # L; packets start at L-1
    starvation_threshold: int = 1000

    # --- ejection-side backpressure ---------------------------------------
    # node id -> ejection buffer capacity in flits; listed nodes must call
    # EjectionInterface.release() when they consume packets (MC nodes on the
    # request network use this to propagate reply-side stalls backward).
    bounded_ejectors: Dict[int, int] = field(default_factory=dict)

    # --- misc ---------------------------------------------------------------
    deadlock_cycles: int = 20000
    sample_interval: int = 16

    def validate(self) -> None:
        if self.num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        if self.routing.startswith("ada") and self.num_vcs < 2:
            raise ValueError("adaptive routing needs >= 2 VCs (escape VC)")
        if (
            self.ni_kind == NIKind.SPLIT
            and self.accelerated_nodes
            and self.num_split_queues > self.num_vcs
        ):
            raise ValueError(
                "split NI queues are hard-wired one-per-VC; "
                f"{self.num_split_queues} queues > {self.num_vcs} VCs"
            )
        if self.injection_speedup > min(4, self.num_vcs):
            raise ValueError(
                "injection speedup exceeds min(N_out, N_VC) (Eq. 2 bound)"
            )
        if self.priority_levels < 1:
            raise ValueError("priority_levels must be >= 1")


class Network:
    """A single physical NoC instance (the paper uses two: request + reply)."""

    def __init__(
        self, config: NetworkConfig, kernel: Optional[str] = None
    ) -> None:
        config.validate()
        self.config = config
        self.topology = MeshTopology(config.width, config.height)
        self.routing = make_routing(config.routing)
        self.now = 0
        self.stats = NetworkStats()

        n = self.topology.num_routers
        self.routers: List[Router] = []
        for r in range(n):
            accelerated = r in config.accelerated_nodes
            self.routers.append(
                Router(
                    router_id=r,
                    coords=self.topology.coords(r),
                    routing=self.routing,
                    num_vcs=config.num_vcs,
                    vc_capacity=config.vc_capacity,
                    num_injection_ports=(
                        config.num_injection_ports if accelerated else 1
                    ),
                    injection_speedup=(
                        config.injection_speedup if accelerated else 1
                    ),
                    priority_enabled=config.priority_enabled,
                    starvation_threshold=config.starvation_threshold,
                )
            )
        coords = self.topology.coords
        for router in self.routers:
            router.set_dest_coords_fn(coords)

        self.mesh_links: List[Link] = []
        self.injection_links: List[Link] = []
        self.injection_links_by_node: Dict[int, List[Link]] = {}
        self.ejection_links: List[Link] = []
        self._wire_mesh()

        self.nis: List[InjectionInterface] = []
        self.ejectors: List[EjectionInterface] = []
        self._attach_interfaces()

        self.on_delivery: Optional[Callable[[int, Packet, int], None]] = None
        # Opt-in periodic sampling (repro.telemetry).  None keeps the hot
        # path to a single comparison per cycle — the PacketTracer contract.
        self.telemetry = None
        # Opt-in hooks following the same is-None contract: `faults` is a
        # repro.faults.FaultInjector mutating the network between cycles,
        # `auditor` a per-cycle flow-control checker (InvariantChecker).
        self.faults = None
        self.auditor = None
        self._last_progress = 0

        # Per-cycle advance loop backend (see repro.noc.kernel).  The
        # kernel may install `_on_offer` during bind() to learn about NI
        # re-arms; None (the reference kernel) keeps offer() hook-free.
        self.kernel_name = resolve_kernel(kernel)
        self._on_offer: Optional[Callable[[int], None]] = None
        self.kernel: SimKernel = make_kernel(self.kernel_name)
        self.kernel.bind(self)

    # ------------------------------------------------------------------
    def _wire_mesh(self) -> None:
        cfg = self.config
        for src, direction, dst in self.topology.links():
            link = Link(
                name=f"r{src}->{direction}->r{dst}", latency=cfg.link_latency
            )
            credit = CreditChannel(latency=1)
            self.routers[src].set_output(direction, link, credit, cfg.vc_capacity)
            self.routers[dst].set_input(opposite(direction), link, credit)
            self.mesh_links.append(link)

    def _attach_interfaces(self) -> None:
        cfg = self.config
        for r, router in enumerate(self.routers):
            accelerated = r in cfg.accelerated_nodes
            kind = cfg.ni_kind if accelerated else NIKind.ENHANCED
            ni = make_ni(
                kind,
                node_id=r,
                capacity_flits=cfg.ni_queue_flits,
                num_vcs=cfg.num_vcs,
                num_split_queues=cfg.num_split_queues,
            )
            links: List[Link] = []
            targets: List[Tuple[int, int]] = []
            ports_vcs: List[Tuple[int, int]] = []
            inj_ports = router.injection_port_ids()
            if isinstance(ni, MultiPortNI):
                for idx, port in enumerate(inj_ports):
                    link = Link(name=f"ni{r}.p{port}", is_injection=True)
                    links.append(link)
                    ni.port_index[port] = idx
                    for vc in range(cfg.num_vcs):
                        ports_vcs.append((port, vc))
                # MultiPort routers need one input link per injection port.
                for idx, port in enumerate(inj_ports):
                    router.set_input(port, links[idx], None)
            elif kind == NIKind.SPLIT and accelerated:
                port = inj_ports[0]
                for q in range(cfg.num_split_queues):
                    link = Link(name=f"ni{r}.q{q}", is_injection=True)
                    links.append(link)
                    targets.append((port, q % cfg.num_vcs))
                for vc in range(cfg.num_vcs):
                    ports_vcs.append((port, vc))
                # All split links feed the same physical injection port.
                self._wire_multi_link_input(router, port, links)
            else:
                port = inj_ports[0]
                link = Link(name=f"ni{r}", is_injection=True)
                links.append(link)
                targets.append((port, 0))
                for vc in range(cfg.num_vcs):
                    ports_vcs.append((port, vc))
                router.set_input(port, link, None)
            ni.attach(links, targets, cfg.vc_capacity, ports_vcs)
            router.attach_ni(ni)
            self.nis.append(ni)
            self.injection_links.extend(links)
            self.injection_links_by_node[r] = links

            ej_link = Link(name=f"ej{r}", latency=cfg.link_latency)
            router.set_ejection(ej_link)
            self.ejection_links.append(ej_link)
            cap = cfg.bounded_ejectors.get(r)
            ejector = EjectionInterface(
                r, capacity_flits=cap, auto_release=(cap is None)
            )
            ejector.on_packet = self._make_delivery(r)
            if cap is not None:
                # Gate the router's LOCAL output on the sink's buffer state,
                # counting flits already in flight on the ejection link.
                def gate(e=ejector, l=ej_link, c=cap):
                    return e.flit_occupancy + l.in_flight < c

                router.ejection_gate = gate
            self.ejectors.append(ejector)

    def _wire_multi_link_input(
        self, router: Router, port: int, links: List[Link]
    ) -> None:
        """SplitNI: several narrow links terminate on one injection port."""
        # Router._ingest walks input_links[port]; store a composite.
        router.input_links[port] = _CompositeLink(links)
        router.credit_out[port] = None

    def _make_delivery(self, node: int) -> Callable[[Packet, int], None]:
        coords = self.topology.coords

        def deliver(packet: Packet, now: int) -> None:
            hops = hop_count(coords(packet.src), coords(packet.dest)) + 2
            self.stats.on_delivery(packet, hops=hops)
            self._last_progress = now
            if self.on_delivery is not None:
                self.on_delivery(node, packet, now)

        return deliver

    # -- public API ---------------------------------------------------------
    def offer(self, node: int, packet: Packet) -> bool:
        """Hand a packet to ``node``'s injection NI; False = NI full.

        On acceptance the packet's latency clock starts: per the paper's
        accounting (Sec. 7.4) the NI injection-queue wait *is* part of
        packet latency, while time stalled in the source node (e.g. reply
        data stuck in the MC, Fig. 12) is not.
        """
        f = self.faults
        if f is not None and f.intercept_offer(node, packet):
            # Destination unreachable on the live-link graph: accept the
            # packet and immediately write it off (lost-reply semantics —
            # the producer proceeds, delivered_fraction records the loss).
            packet.created_at = self.now
            self.stats.on_offer()
            self.stats.on_drop(packet)
            return True
        ok = self.nis[node].offer(packet, self.now)
        if ok:
            packet.created_at = self.now
            self.stats.on_offer()
            h = self._on_offer
            if h is not None:
                h(node)
        return ok

    def can_accept(self, node: int, packet: Packet) -> bool:
        return self.nis[node].can_accept(packet)

    def step(self) -> None:
        """Advance one cycle; the visiting order lives in the kernel."""
        self.kernel.cycle(self)

    def _no_progress(self, now: int) -> None:
        """Watchdog trip (called by kernels): in-flight traffic stalled."""
        raise DeadlockError(
            f"no progress for {now - self._last_progress} cycles with "
            f"{self.stats.in_flight} packets in flight"
        )

    def run(self, cycles: int) -> None:
        cyc = self.kernel.cycle
        for _ in range(cycles):
            cyc(self)

    def set_hop_hook(
        self, fn: Optional[Callable[[int, Packet, int], None]]
    ) -> None:
        """Install (or clear) a per-router head-flit observer.

        ``fn(router_id, packet, cycle)`` fires once per route computation,
        after ARI priority decay — the PacketTracer uses this for
        ``hop`` events.
        """
        for router in self.routers:
            router.on_hop = fn

    def drain(self, max_cycles: int = 100000) -> bool:
        """Step until all offered packets are delivered (True on success)."""
        for _ in range(max_cycles):
            if self.stats.in_flight == 0:
                return True
            self.step()
        return self.stats.in_flight == 0

    # -- analysis -------------------------------------------------------------
    def injection_link_utilization(
        self, nodes: Optional[Sequence[int]] = None
    ) -> float:
        """Mean flits/cycle over injection links.

        Pass ``nodes`` to restrict to the nodes that actually inject (the
        Sec. 3 measurement is over the MC injection links of the reply
        network, not the idle CC-side NIs).
        """
        if nodes is None:
            links = self.injection_links
        else:
            links = [l for n in nodes for l in self.injection_links_by_node[n]]
        return mean_link_utilization(links, self.now)

    def mesh_link_utilization(self) -> float:
        return mean_link_utilization(self.mesh_links, self.now)

    def ni_occupancy(self, node: int) -> float:
        return self.nis[node].stats.mean_occupancy

    def zero_load_latency(self, src: int, dest: int, size: int) -> int:
        """Analytic zero-load latency matching the router model.

        1 cycle NI link, 1 cycle per hop (single-cycle router + unit link),
        1 cycle ejection link, plus serialization of the remaining flits.
        """
        hops = hop_count(self.topology.coords(src), self.topology.coords(dest))
        return 1 + hops + 1 + (size - 1)


class _CompositeLink:
    """Bundles several NI links into one router input (SplitNI wiring).

    Only the ``arrivals`` interface is needed on the router side.
    """

    __slots__ = ("links",)

    def __init__(self, links: List[Link]) -> None:
        self.links = links

    def arrivals(self, now: int) -> List:
        out: List = []
        for link in self.links:
            out.extend(link.arrivals(now))
        return out


class PerfectNetwork:
    """Infinite-bandwidth network: zero-load delivery, no contention.

    Used to measure the *ideal packet injection rate* of Eq. (1): with a
    perfect consumption side, how fast do MCs hand packets to the network?
    """

    def __init__(
        self, config: NetworkConfig, kernel: Optional[str] = None
    ) -> None:
        # `kernel` is accepted for constructor uniformity with Network but
        # ignored: the perfect network has no per-component advance loop.
        config.validate()
        self.config = config
        self.kernel_name = resolve_kernel(kernel)
        self.topology = MeshTopology(config.width, config.height)
        self.now = 0
        self.stats = NetworkStats()
        self.on_delivery: Optional[Callable[[int, Packet, int], None]] = None
        self.telemetry = None
        self._in_flight: List[Tuple[int, Packet]] = []
        self.injections_per_node: Dict[int, int] = {}

    def offer(self, node: int, packet: Packet) -> bool:
        packet.created_at = self.now
        self.stats.on_offer()
        hops = hop_count(
            self.topology.coords(packet.src), self.topology.coords(packet.dest)
        )
        arrival = self.now + 1 + hops + packet.size
        packet.injected_at = self.now
        self._in_flight.append((arrival, packet))
        self.injections_per_node[node] = self.injections_per_node.get(node, 0) + 1
        return True

    def can_accept(self, node: int, packet: Packet) -> bool:
        return True

    def step(self) -> None:
        now = self.now
        remaining = []
        for arrival, packet in self._in_flight:
            if arrival <= now:
                packet.received_at = now
                hops = hop_count(
                    self.topology.coords(packet.src),
                    self.topology.coords(packet.dest),
                ) + 2
                self.stats.on_delivery(packet, hops=hops)
                if self.on_delivery is not None:
                    self.on_delivery(packet.dest, packet, now)
            else:
                remaining.append((arrival, packet))
        self._in_flight = remaining
        t = self.telemetry
        if t is not None:
            t.on_cycle(now)
        self.now = now + 1
        self.stats.cycles = self.now

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def injection_rate(self, node: int) -> float:
        """Measured packets/cycle offered by ``node`` (Eq. 1 input)."""
        if self.now == 0:
            return 0.0
        return self.injections_per_node.get(node, 0) / self.now
