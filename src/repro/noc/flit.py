"""Packets and flits.

A packet is the unit of end-to-end transfer; it is serialized into flits that
match the link width.  Following the paper's traffic model (Sec. 3, Fig. 5):

* ``READ_REQUEST`` and ``WRITE_REPLY`` are *short* packets (1 flit: header +
  address / ack).
* ``READ_REPLY`` and ``WRITE_REQUEST`` are *long* packets carrying a cache
  line of data (1 head flit + ``line_bytes / flit_bytes`` body flits).

Packets carry the ARI priority field (Sec. 5): it is initialized to the
configured number of priority levels minus one when the packet is created and
decremented by the route-computation stage of every router it traverses.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional, Tuple


class PacketType(enum.IntEnum):
    """The four packet classes that coexist in the GPGPU NoC (Fig. 5)."""

    READ_REQUEST = 0
    WRITE_REQUEST = 1
    READ_REPLY = 2
    WRITE_REPLY = 3

    @property
    def is_request(self) -> bool:
        return self in (PacketType.READ_REQUEST, PacketType.WRITE_REQUEST)

    @property
    def is_reply(self) -> bool:
        return not self.is_request

    @property
    def is_long(self) -> bool:
        """Long packets carry a full cache line of data."""
        return self in (PacketType.READ_REPLY, PacketType.WRITE_REQUEST)


_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Reset the global packet id counter (for reproducible tests)."""
    global _packet_ids
    _packet_ids = itertools.count()


class Packet:
    """A network packet.

    Parameters
    ----------
    ptype:
        One of :class:`PacketType`.
    src, dest:
        Node ids (indices into the network's node list).
    size:
        Number of flits.
    created_at:
        Cycle at which the message was handed to the NI (starts the
        end-to-end latency clock).
    priority:
        Initial ARI priority level (``0`` means no priority boost).
    tag:
        Opaque payload used by higher layers (e.g. the GPU model stores the
        originating memory transaction here).
    """

    __slots__ = (
        "pid",
        "ptype",
        "src",
        "dest",
        "size",
        "created_at",
        "injected_at",
        "received_at",
        "priority",
        "tag",
    )

    def __init__(
        self,
        ptype: PacketType,
        src: int,
        dest: int,
        size: int,
        created_at: int,
        priority: int = 0,
        tag: object = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"packet size must be >= 1, got {size}")
        if src == dest:
            raise ValueError("packet source and destination must differ")
        self.pid: int = next(_packet_ids)
        self.ptype = ptype
        self.src = src
        self.dest = dest
        self.size = size
        self.created_at = created_at
        self.injected_at: Optional[int] = None   # head flit enters the router
        self.received_at: Optional[int] = None   # tail flit ejected
        self.priority = priority
        self.tag = tag

    # ------------------------------------------------------------------
    def make_flits(self) -> List["Flit"]:
        """Serialize the packet into its flits (head ... tail)."""
        flits = []
        for i in range(self.size):
            flits.append(
                Flit(
                    packet=self,
                    seq=i,
                    is_head=(i == 0),
                    is_tail=(i == self.size - 1),
                )
            )
        return flits

    @property
    def latency(self) -> Optional[int]:
        """End-to-end packet latency (None until the packet is delivered)."""
        if self.received_at is None:
            return None
        return self.received_at - self.created_at

    @property
    def network_latency(self) -> Optional[int]:
        """Latency from injection into the router to delivery."""
        if self.received_at is None or self.injected_at is None:
            return None
        return self.received_at - self.injected_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, {self.ptype.name}, {self.src}->{self.dest},"
            f" size={self.size}, prio={self.priority})"
        )


class Flit:
    """A flow-control unit; the granularity of link and buffer allocation.

    Flits reference their parent packet for routing state; only head flits
    consult the routing function, body/tail flits follow the head's VC in
    wormhole fashion.
    """

    __slots__ = ("packet", "seq", "is_head", "is_tail", "vc", "out_port", "out_vc")

    def __init__(self, packet: Packet, seq: int, is_head: bool, is_tail: bool) -> None:
        self.packet = packet
        self.seq = seq
        self.is_head = is_head
        self.is_tail = is_tail
        # Transient switching state, owned by the router currently holding
        # the flit:
        self.vc: Optional[int] = None        # input VC at the current router
        self.out_port: Optional[int] = None  # route decision (head sets it)
        self.out_vc: Optional[int] = None    # allocated downstream VC

    @property
    def priority(self) -> int:
        return self.packet.priority

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({kind}{self.seq} of pid={self.packet.pid})"


def packet_size_for(
    ptype: PacketType, line_bytes: int = 128, flit_bytes: int = 16
) -> int:
    """Number of flits for a packet type given the data payload geometry.

    Short packets (read request / write reply) are a single header flit.
    Long packets carry ``line_bytes`` of data in ``line_bytes/flit_bytes``
    body flits behind one head flit.
    """
    if flit_bytes <= 0 or line_bytes <= 0:
        raise ValueError("line_bytes and flit_bytes must be positive")
    if not ptype.is_long:
        return 1
    body = (line_bytes + flit_bytes - 1) // flit_bytes
    return 1 + body


def classify_pair(ptype: PacketType) -> Tuple[PacketType, PacketType]:
    """Return the (request, reply) pair a packet type belongs to."""
    if ptype in (PacketType.READ_REQUEST, PacketType.READ_REPLY):
        return (PacketType.READ_REQUEST, PacketType.READ_REPLY)
    return (PacketType.WRITE_REQUEST, PacketType.WRITE_REPLY)
