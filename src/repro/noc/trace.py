"""Packet event tracing.

Attach a :class:`PacketTracer` to a :class:`~repro.noc.network.Network` to
record per-packet lifecycle events (offer, injection, delivery) plus
arbitrary custom markers, then query or summarize them.  Tracing is opt-in
and adds one callback per event, so the untraced hot path is unaffected.

Example::

    net = Network(cfg)
    tracer = PacketTracer.attach(net)
    ... run ...
    for ev in tracer.events_for(pid):
        print(ev)
    print(tracer.lifecycle_summary())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.noc.flit import Packet
from repro.noc.histogram import LatencyHistogram


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    kind: str          # "offer" | "inject" | "deliver" | custom
    pid: int
    node: Optional[int] = None
    info: Optional[str] = None

    def __str__(self) -> str:
        where = f" @node{self.node}" if self.node is not None else ""
        extra = f" ({self.info})" if self.info else ""
        return f"[{self.cycle:>8}] {self.kind:<8} pid={self.pid}{where}{extra}"


class PacketTracer:
    """Records packet lifecycle events from a network."""

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self._by_pid: Dict[int, List[int]] = {}
        self.dropped = 0
        self.ni_wait = LatencyHistogram()
        self.network_latency = LatencyHistogram()

    # -- recording ---------------------------------------------------------
    def record(
        self,
        cycle: int,
        kind: str,
        pid: int,
        node: Optional[int] = None,
        info: Optional[str] = None,
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        ev = TraceEvent(cycle, kind, pid, node, info)
        self._by_pid.setdefault(pid, []).append(len(self.events))
        self.events.append(ev)

    # -- attachment ----------------------------------------------------------
    @classmethod
    def attach(cls, network, hops: bool = True, **kwargs) -> "PacketTracer":
        """Wrap the network's offer/delivery paths with trace recording.

        The network's existing ``on_delivery`` callback (if any) keeps
        working; the tracer chains in front of it.

        With ``hops=True`` (and a network exposing ``set_hop_hook``) a
        ``hop`` event is also recorded at every route computation — once
        per router a head flit enters — carrying the packet's ARI priority
        *after* the Sec. 5.3 per-hop decrement, so priority demotion is
        visible hop by hop in the trace.
        """
        tracer = cls(**kwargs)
        original_offer = network.offer
        original_delivery = network.on_delivery

        def traced_offer(node: int, packet: Packet) -> bool:
            ok = original_offer(node, packet)
            if ok:
                tracer.record(network.now, "offer", packet.pid, node)
            return ok

        def traced_delivery(node: int, packet: Packet, now: int) -> None:
            tracer.record(now, "deliver", packet.pid, node)
            if packet.injected_at is not None:
                tracer.record(
                    packet.injected_at, "inject", packet.pid, packet.src
                )
                tracer.ni_wait.record(packet.injected_at - packet.created_at)
            if packet.network_latency is not None:
                tracer.network_latency.record(packet.network_latency)
            if original_delivery is not None:
                original_delivery(node, packet, now)

        network.offer = traced_offer
        network.on_delivery = traced_delivery
        if hops and hasattr(network, "set_hop_hook"):

            def on_hop(router_id: int, packet: Packet, now: int) -> None:
                tracer.record(
                    now, "hop", packet.pid, router_id,
                    info=f"prio={packet.priority}",
                )

            network.set_hop_hook(on_hop)
        return tracer

    # -- hop queries ---------------------------------------------------------
    def hop_path(self, pid: int) -> List[int]:
        """Router ids a packet's head flit visited, in order."""
        evs = sorted(
            (e for e in self.events_for(pid) if e.kind == "hop"),
            key=lambda e: e.cycle,
        )
        return [e.node for e in evs if e.node is not None]

    def priority_trace(self, pid: int) -> List[int]:
        """The packet's ARI priority after each route computation."""
        evs = sorted(
            (e for e in self.events_for(pid) if e.kind == "hop"),
            key=lambda e: e.cycle,
        )
        out: List[int] = []
        for e in evs:
            if e.info and e.info.startswith("prio="):
                out.append(int(e.info[5:]))
        return out

    # -- queries ------------------------------------------------------------
    def events_for(self, pid: int) -> List[TraceEvent]:
        return [self.events[i] for i in self._by_pid.get(pid, [])]

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)

    def lifecycle_summary(self) -> Dict[str, Dict[str, float]]:
        """NI-wait and in-network latency distributions of traced packets."""
        return {
            "ni_wait": self.ni_wait.summary(),
            "network_latency": self.network_latency.summary(),
        }

    def format_timeline(self, pid: int) -> str:
        evs = sorted(self.events_for(pid), key=lambda e: e.cycle)
        if not evs:
            return f"pid={pid}: no events"
        return "\n".join(str(e) for e in evs)
