"""Network statistics collection.

Gathers everything the paper's Section 3 analysis and evaluation figures
need: per-type packet latencies (Figs. 3, 13), flit-weighted traffic mix
(Fig. 5), link utilization split into injection links vs. in-network links
(Sec. 3: 0.39 vs 0.084 flits/cycle), and NI injection-queue occupancy
(Fig. 6).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.noc.flit import Packet, PacketType
from repro.noc.histogram import LatencyHistogram
from repro.noc.link import Link


class LatencyAccumulator:
    """Running latency stats for one packet type.

    Keeps the full distribution in a log-bucketed histogram, so the
    bottleneck's tail (a few packets stuck behind a full NI queue) is
    queryable as p50/p95/p99, not hidden behind the mean.
    """

    __slots__ = ("count", "total", "net_total", "max", "hist")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.net_total = 0
        self.max = 0
        self.hist = LatencyHistogram()

    def record(self, packet: Packet) -> None:
        lat = packet.latency
        if lat is None:
            return
        self.count += 1
        self.total += lat
        self.hist.record(lat)
        if packet.network_latency is not None:
            self.net_total += packet.network_latency
        if lat > self.max:
            self.max = lat

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def mean_network(self) -> float:
        return self.net_total / self.count if self.count else 0.0

    @property
    def p50(self) -> Optional[float]:
        return self.hist.p50

    @property
    def p95(self) -> Optional[float]:
        return self.hist.p95

    @property
    def p99(self) -> Optional[float]:
        return self.hist.p99


class NetworkStats:
    """Aggregated statistics for one network instance."""

    def __init__(self) -> None:
        self.latency: Dict[PacketType, LatencyAccumulator] = {
            t: LatencyAccumulator() for t in PacketType
        }
        self.flits_delivered: Dict[PacketType, int] = {t: 0 for t in PacketType}
        # Flit-hops of *delivered* packets (size x path length); unlike raw
        # router counters this is unbiased by in-flight backlog, so it is
        # the right dynamic-energy input for equal-work comparisons.
        self.flit_hops_delivered = 0
        self.packets_offered = 0
        self.packets_delivered = 0
        # Packets removed from the accounting without delivery (fault
        # injection: purged as unroutable, dropped from a dead NI queue,
        # or written off at the source for an unreachable destination).
        self.packets_dropped = 0
        self.cycles = 0

    # -- recording ---------------------------------------------------------
    def on_offer(self) -> None:
        self.packets_offered += 1

    def on_drop(self, packet: Packet) -> None:
        """Write a packet off: it was offered but will never be delivered."""
        self.packets_dropped += 1

    def on_delivery(self, packet: Packet, hops: int = 0) -> None:
        self.packets_delivered += 1
        self.latency[packet.ptype].record(packet)
        self.flits_delivered[packet.ptype] += packet.size
        self.flit_hops_delivered += packet.size * hops

    # -- queries -------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return (
            self.packets_offered - self.packets_delivered - self.packets_dropped
        )

    def delivered_fraction(self) -> float:
        """Delivered share of *resolved* packets (still-in-flight excluded).

        Exactly 1.0 on a fault-free run; drops (fault campaigns) pull it
        below 1 — the headline metric of a :class:`~repro.faults.campaign.
        DegradationReport`.
        """
        resolved = self.packets_delivered + self.packets_dropped
        return self.packets_delivered / resolved if resolved else 1.0

    def mean_latency(self, types: Optional[Iterable[PacketType]] = None) -> float:
        types = list(types) if types is not None else list(PacketType)
        count = sum(self.latency[t].count for t in types)
        total = sum(self.latency[t].total for t in types)
        return total / count if count else 0.0

    def traffic_mix(self) -> Dict[PacketType, float]:
        """Flit-weighted share of each packet type (Fig. 5)."""
        total = sum(self.flits_delivered.values())
        if total == 0:
            return {t: 0.0 for t in PacketType}
        return {t: self.flits_delivered[t] / total for t in PacketType}

    def throughput(self) -> float:
        """Delivered packets per cycle."""
        return self.packets_delivered / self.cycles if self.cycles else 0.0

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-type latency distributions (mean + p50/p95/p99 tails).

        ``"all"`` merges every type into one distribution; types with no
        delivered packets are omitted.
        """
        out: Dict[str, Dict[str, float]] = {}
        merged = LatencyHistogram()
        for t in PacketType:
            acc = self.latency[t]
            if not acc.count:
                continue
            out[t.name.lower()] = {
                "count": acc.count,
                "mean": acc.mean,
                "p50": acc.p50,
                "p95": acc.p95,
                "p99": acc.p99,
                "max": float(acc.max),
            }
            merged.merge(acc.hist)
        if merged.count:
            out["all"] = {
                "count": merged.count,
                "mean": merged.mean,
                "p50": merged.p50,
                "p95": merged.p95,
                "p99": merged.p99,
                "max": float(merged.max_value or 0),
            }
        return out


def mean_link_utilization(links: Iterable[Link], cycles: int) -> float:
    links = list(links)
    if not links or cycles <= 0:
        return 0.0
    return sum(l.flits_carried for l in links) / (len(links) * cycles)
