"""Network statistics collection.

Gathers everything the paper's Section 3 analysis and evaluation figures
need: per-type packet latencies (Figs. 3, 13), flit-weighted traffic mix
(Fig. 5), link utilization split into injection links vs. in-network links
(Sec. 3: 0.39 vs 0.084 flits/cycle), and NI injection-queue occupancy
(Fig. 6).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.noc.flit import Packet, PacketType
from repro.noc.link import Link


class LatencyAccumulator:
    __slots__ = ("count", "total", "net_total", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.net_total = 0
        self.max = 0

    def record(self, packet: Packet) -> None:
        lat = packet.latency
        if lat is None:
            return
        self.count += 1
        self.total += lat
        if packet.network_latency is not None:
            self.net_total += packet.network_latency
        if lat > self.max:
            self.max = lat

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def mean_network(self) -> float:
        return self.net_total / self.count if self.count else 0.0


class NetworkStats:
    """Aggregated statistics for one network instance."""

    def __init__(self) -> None:
        self.latency: Dict[PacketType, LatencyAccumulator] = {
            t: LatencyAccumulator() for t in PacketType
        }
        self.flits_delivered: Dict[PacketType, int] = {t: 0 for t in PacketType}
        # Flit-hops of *delivered* packets (size x path length); unlike raw
        # router counters this is unbiased by in-flight backlog, so it is
        # the right dynamic-energy input for equal-work comparisons.
        self.flit_hops_delivered = 0
        self.packets_offered = 0
        self.packets_delivered = 0
        self.cycles = 0

    # -- recording ---------------------------------------------------------
    def on_offer(self) -> None:
        self.packets_offered += 1

    def on_delivery(self, packet: Packet, hops: int = 0) -> None:
        self.packets_delivered += 1
        self.latency[packet.ptype].record(packet)
        self.flits_delivered[packet.ptype] += packet.size
        self.flit_hops_delivered += packet.size * hops

    # -- queries -------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self.packets_offered - self.packets_delivered

    def mean_latency(self, types: Optional[Iterable[PacketType]] = None) -> float:
        types = list(types) if types is not None else list(PacketType)
        count = sum(self.latency[t].count for t in types)
        total = sum(self.latency[t].total for t in types)
        return total / count if count else 0.0

    def traffic_mix(self) -> Dict[PacketType, float]:
        """Flit-weighted share of each packet type (Fig. 5)."""
        total = sum(self.flits_delivered.values())
        if total == 0:
            return {t: 0.0 for t in PacketType}
        return {t: self.flits_delivered[t] / total for t in PacketType}

    def throughput(self) -> float:
        """Delivered packets per cycle."""
        return self.packets_delivered / self.cycles if self.cycles else 0.0


def mean_link_utilization(links: Iterable[Link], cycles: int) -> float:
    links = list(links)
    if not links or cycles <= 0:
        return 0.0
    return sum(l.flits_carried for l in links) / (len(links) * cycles)
