"""Network interfaces (NIs) — the supply side of the injection bottleneck.

Four injection-NI microarchitectures are modeled (paper Fig. 7 and Sec. 6.2):

``BaselineNI``
    GPGPU-Sim's default: a *narrow* (N-bit) link between the node (MC) and
    the NI, so moving one long reply into the NI takes ``packet.size``
    cycles, plus a single injection queue drained at 1 flit/cycle.

``EnhancedNI``
    The paper's actual baseline (Fig. 7a): wide (W-bit) node->NI and
    NI->queue links — a whole packet enters the queue in one cycle — but
    still a single narrow link from the queue to the router injection port,
    capping supply at 1 flit/cycle.

``SplitNI`` (ARI supply side, Fig. 7b)
    The injection queue is split into ``num_queues`` one-packet queues fed
    by wide links; each split queue drives its own narrow link hard-wired to
    a dedicated VC of the router injection port, so up to ``num_queues``
    flits enter the router per cycle.

``MultiPortNI`` ([Bakhoda MICRO'10] comparison scheme)
    The *router* grows extra injection ports (more consumption paths), but
    the NI keeps one queue with a single read port: supply stays 1
    flit/cycle, merely steerable across ports.

Ejection is handled by :class:`EjectionInterface`, which reassembles flits
into packets and delivers them to the attached node.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.noc.flit import Flit, Packet
from repro.noc.link import Link


class NIKind(enum.Enum):
    BASELINE_NARROW = "baseline-narrow"
    ENHANCED = "enhanced"
    SPLIT = "split"
    MULTIPORT = "multiport"


class InjectionStats:
    """Counters every injection NI keeps (drives Figs. 6 and 12)."""

    __slots__ = (
        "packets_accepted",
        "packets_rejected",
        "flits_sent",
        "occupancy_samples",
        "occupancy_sum",
        "occupancy_max",
    )

    def __init__(self) -> None:
        self.packets_accepted = 0
        self.packets_rejected = 0
        self.flits_sent = 0
        self.occupancy_samples = 0
        self.occupancy_sum = 0
        self.occupancy_max = 0

    def sample_occupancy(self, packets_queued: int) -> None:
        self.occupancy_samples += 1
        self.occupancy_sum += packets_queued
        if packets_queued > self.occupancy_max:
            self.occupancy_max = packets_queued

    @property
    def mean_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_sum / self.occupancy_samples


class InjectionInterface:
    """Base class for injection NIs.

    The router side exposes, per injection input port, the per-VC free-space
    view through ``vc_space(port, vc)`` — a callable installed by the
    network when wiring — and the NI pushes flits onto :class:`Link` objects
    that terminate in the router's injection VCs.
    """

    kind: NIKind = NIKind.ENHANCED

    def __init__(self, node_id: int, capacity_flits: int, num_vcs: int) -> None:
        if capacity_flits < 1:
            raise ValueError("NI queue capacity must be >= 1 flit")
        self.node_id = node_id
        self.capacity_flits = capacity_flits
        self.num_vcs = num_vcs
        self.stats = InjectionStats()
        # repro.faults: indices of failed internal queues.  None (the
        # default, meaning "faults never installed") keeps every hot-path
        # guard to a single is-None comparison.  A dead queue accepts no
        # new packets and starts no new packet, but finishes streaming a
        # partially-sent one — the router-side wormhole must not orphan.
        self.dead_queues: Optional[set] = None
        # Wired by the network:
        self.links: List[Link] = []
        # port/vc credit view: credits[(port, vc)] = free downstream slots.
        self.credits: Dict[Tuple[int, int], int] = {}
        # (port, vc) pairs each link index feeds; SplitNI uses a fixed map.
        self.link_targets: List[Tuple[int, int]] = []

    # -- wiring ---------------------------------------------------------
    def attach(
        self,
        links: List[Link],
        link_targets: List[Tuple[int, int]],
        vc_capacity: int,
        ports_vcs: List[Tuple[int, int]],
    ) -> None:
        """Install router-facing wiring.

        ``ports_vcs`` lists every (injection port, vc) the NI may target,
        initializing the credit view to ``vc_capacity``.
        """
        self.links = links
        self.link_targets = link_targets
        for pv in ports_vcs:
            self.credits[pv] = vc_capacity

    def on_credit(self, port: int, vc: int) -> None:
        self.credits[(port, vc)] += 1

    # -- node-facing API --------------------------------------------------
    def can_accept(self, packet: Packet) -> bool:
        raise NotImplementedError

    def offer(self, packet: Packet, now: int) -> bool:
        """Node hands a packet to the NI; False means "try again later"."""
        raise NotImplementedError

    def step(self, now: int) -> int:
        """Move flits from NI queues onto the injection link(s).

        Returns the number of flits sent this cycle; the network's
        deadlock watchdog counts NI injection progress too, so a long
        warm-up draining only NI queues is not mistaken for a deadlock.
        """
        raise NotImplementedError

    def has_work(self) -> bool:
        """True while the NI could still make progress on a future cycle.

        The activity-gated kernel drops an NI from its live set as soon
        as this goes False; anything that re-arms the NI (a new offer)
        must flow through :meth:`Network.offer` so the kernel sees it.
        """
        return self.queued_flits() > 0

    # -- stats -------------------------------------------------------------
    def queued_flits(self) -> int:
        raise NotImplementedError

    def queued_packets(self) -> int:
        raise NotImplementedError

    def queue_depths(self) -> List[int]:
        """Flits queued per internal queue (one entry for single-queue NIs;
        one per split queue for :class:`SplitNI`) — the telemetry view of
        the supply side."""
        return [self.queued_flits()]

    def _queue_dead(self, qi: int) -> bool:
        dq = self.dead_queues
        return dq is not None and qi in dq

    def drop_queue_front(self, qi: int, now: int) -> Optional[Packet]:
        """Fault path: discard the not-yet-streamed packet at a queue front.

        Returns the packet, or None when nothing droppable is there (empty
        queue, or the front packet already streamed its head — the caller
        retries once the queue has drained it).
        """
        raise NotImplementedError

    def sample(self) -> None:
        self.stats.sample_occupancy(self.queued_packets())


class _SingleQueueNI(InjectionInterface):
    """Common machinery for the single-injection-queue NIs."""

    def __init__(self, node_id: int, capacity_flits: int, num_vcs: int) -> None:
        super().__init__(node_id, capacity_flits, num_vcs)
        self.queue: Deque[Flit] = deque()
        self._queued_packets = 0
        # Front packet's bound (port, vc), None until VA-at-source succeeds.
        self._front_binding: Optional[Tuple[int, int]] = None

    def queued_flits(self) -> int:
        return len(self.queue)

    def queued_packets(self) -> int:
        return self._queued_packets

    def _free_flits(self) -> int:
        return self.capacity_flits - len(self.queue)

    def _enqueue_packet(self, packet: Packet, now: int) -> None:
        # Capacity was reserved by the offer()/can_accept gate before
        # this is reached; the push itself is deliberately unguarded.
        for flit in packet.make_flits():
            self.queue.append(flit)  # proto: allow(proto-push-guard)
        self._queued_packets += 1
        self.stats.packets_accepted += 1

    def _bind_front(self) -> Optional[Tuple[int, int]]:
        """Source-side VC selection: find a (port, vc) that can take the
        whole packet at the queue front (WPF admission)."""
        front = self.queue[0]
        size = front.packet.size
        best: Optional[Tuple[int, int]] = None
        best_free = -1
        for (port, vc), free in self.credits.items():
            if free >= size and free > best_free:
                best = (port, vc)
                best_free = free
        return best

    def drop_queue_front(self, qi: int, now: int) -> Optional[Packet]:
        if qi != 0 or not self.queue:
            return None
        front = self.queue[0]
        if not front.is_head:
            return None  # mid-stream; let it drain first
        pkt = front.packet
        for _ in range(pkt.size):
            self.queue.popleft()
        self._queued_packets -= 1
        self._front_binding = None
        return pkt

    def step(self, now: int) -> int:
        # One narrow link: at most one flit per cycle leaves the NI.
        if not self.queue:
            return 0
        front = self.queue[0]
        if front.is_head and self.dead_queues is not None and 0 in self.dead_queues:
            return 0  # dead queue: finish in-flight packets, start none
        if front.is_head and self._front_binding is None:
            self._front_binding = self._bind_front()
            if self._front_binding is None:
                return 0  # no injection VC can hold the whole packet yet
        binding = self._front_binding
        if binding is None:
            raise RuntimeError("body flit at NI front without a binding")
        port, vc = binding
        if self.credits[(port, vc)] <= 0:
            return 0  # downstream VC full; wait for credits
        flit = self.queue.popleft()
        flit.out_vc = vc
        flit.out_port = port
        self.credits[(port, vc)] -= 1
        self.links[0].send(flit, now)
        self.stats.flits_sent += 1
        if flit.is_tail:
            self._queued_packets -= 1
            self._front_binding = None
        return 1


class BaselineNI(_SingleQueueNI):
    """Narrow node->NI link: a long packet takes ``size`` cycles to enter."""

    kind = NIKind.BASELINE_NARROW

    def __init__(self, node_id: int, capacity_flits: int, num_vcs: int) -> None:
        super().__init__(node_id, capacity_flits, num_vcs)
        self._transfer_busy_until = 0
        self._pending: Optional[Tuple[Packet, int]] = None  # (packet, done_at)

    def can_accept(self, packet: Packet) -> bool:
        return (
            self._pending is None
            and self._free_flits() >= packet.size
            and not self._queue_dead(0)
        )

    def offer(self, packet: Packet, now: int) -> bool:
        if not self.can_accept(packet):
            self.stats.packets_rejected += 1
            return False
        # The narrow link streams the packet in over `size` cycles (one
        # flit per cycle), so the flit count doubles as a cycle count.
        self._pending = (packet, now + packet.size)  # unit: cycles
        return True

    def step(self, now: int) -> int:
        if self._pending is not None:
            packet, done_at = self._pending
            if now >= done_at:
                self._enqueue_packet(packet, now)
                self._pending = None
        return super().step(now)

    def queued_packets(self) -> int:
        return self._queued_packets + (1 if self._pending else 0)

    def has_work(self) -> bool:
        return self._pending is not None or bool(self.queue)


class EnhancedNI(_SingleQueueNI):
    """Wide node->NI links (Fig. 7a): whole packet enters in one cycle."""

    kind = NIKind.ENHANCED

    def can_accept(self, packet: Packet) -> bool:
        return self._free_flits() >= packet.size and not self._queue_dead(0)

    def offer(self, packet: Packet, now: int) -> bool:
        if not self.can_accept(packet):
            self.stats.packets_rejected += 1
            return False
        self._enqueue_packet(packet, now)
        return True


class MultiPortNI(_SingleQueueNI):
    """NI for the MultiPort router: same single queue / single read port.

    The extra injection ports only widen the *choice* of (port, vc) at
    binding time; supply remains one flit per cycle.  The per-port links are
    indexed by injection port order in :attr:`port_index`.
    """

    kind = NIKind.MULTIPORT

    def __init__(self, node_id: int, capacity_flits: int, num_vcs: int) -> None:
        super().__init__(node_id, capacity_flits, num_vcs)
        self.port_index: Dict[int, int] = {}  # injection port id -> link idx

    def can_accept(self, packet: Packet) -> bool:
        return self._free_flits() >= packet.size and not self._queue_dead(0)

    def offer(self, packet: Packet, now: int) -> bool:
        if not self.can_accept(packet):
            self.stats.packets_rejected += 1
            return False
        self._enqueue_packet(packet, now)
        return True

    def step(self, now: int) -> int:
        if not self.queue:
            return 0
        front = self.queue[0]
        if front.is_head and self.dead_queues is not None and 0 in self.dead_queues:
            return 0  # dead queue: finish in-flight packets, start none
        if front.is_head and self._front_binding is None:
            self._front_binding = self._bind_front()
            if self._front_binding is None:
                return 0
        binding = self._front_binding
        if binding is None:
            raise RuntimeError("body flit at NI front without a binding")
        port, vc = binding
        if self.credits[(port, vc)] <= 0:
            return 0
        flit = self.queue.popleft()
        flit.out_vc = vc
        flit.out_port = port
        self.credits[(port, vc)] -= 1
        self.links[self.port_index[port]].send(flit, now)
        self.stats.flits_sent += 1
        if flit.is_tail:
            self._queued_packets -= 1
            self._front_binding = None
        return 1


class SplitNI(InjectionInterface):
    """ARI split-queue NI (Fig. 7b).

    ``num_queues`` one-packet queues, each with a dedicated narrow link into
    a dedicated injection VC.  A whole packet is written into a free split
    queue in one cycle (wide link); every queue independently drains one
    flit per cycle, so aggregate supply reaches ``num_queues`` flits/cycle.
    """

    kind = NIKind.SPLIT

    def __init__(
        self,
        node_id: int,
        capacity_flits: int,
        num_vcs: int,
        num_queues: int,
        queue_capacity_flits: Optional[int] = None,
    ) -> None:
        super().__init__(node_id, capacity_flits, num_vcs)
        if num_queues < 1:
            raise ValueError("num_queues must be >= 1")
        self.num_queues = num_queues
        # Fair comparison (Sec. 6.2): total buffer equals the single-queue
        # NI's capacity unless explicitly overridden.
        per_q = queue_capacity_flits or max(1, capacity_flits // num_queues)
        self.queue_capacity = per_q
        self.queues: List[Deque[Flit]] = [deque() for _ in range(num_queues)]
        # Packets queued per split queue (0 or more; a queue only accepts a
        # packet if the whole packet fits).
        self._queue_pkts: List[int] = [0] * num_queues
        # Overflow staging: packets accepted while all split queues are full
        # wait here (bounded so total capacity matches `capacity_flits`).
        self._rr_next = 0

    # -- node side -------------------------------------------------------
    def _find_queue(self, size: int) -> Optional[int]:
        n = self.num_queues
        dead = self.dead_queues
        for off in range(n):
            qi = (self._rr_next + off) % n
            if dead is not None and qi in dead:
                continue
            if self.queue_capacity - len(self.queues[qi]) >= size:
                return qi
        return None

    def can_accept(self, packet: Packet) -> bool:
        return self._find_queue(packet.size) is not None

    def offer(self, packet: Packet, now: int) -> bool:
        qi = self._find_queue(packet.size)
        if qi is None:
            self.stats.packets_rejected += 1
            return False
        for flit in packet.make_flits():
            self.queues[qi].append(flit)
        self._queue_pkts[qi] += 1
        self._rr_next = (qi + 1) % self.num_queues
        self.stats.packets_accepted += 1
        return True

    # -- drain -------------------------------------------------------------
    def step(self, now: int) -> int:
        # Each split queue is hard-wired to link i -> (port, vc) =
        # link_targets[i]; no multiplexer (Fig. 7b).
        dead = self.dead_queues
        sent = 0
        for qi in range(self.num_queues):
            q = self.queues[qi]
            if not q:
                continue
            if dead is not None and qi in dead and q[0].is_head:
                continue  # dead queue: finish in-flight packets, start none
            port, vc = self.link_targets[qi]
            if self.credits[(port, vc)] <= 0:
                continue
            front = q[0]
            if front.is_head and self.credits[(port, vc)] < front.packet.size:
                # WPF: only start a packet when the whole packet fits.
                continue
            flit = q.popleft()
            flit.out_port = port
            flit.out_vc = vc
            self.credits[(port, vc)] -= 1
            self.links[qi].send(flit, now)
            self.stats.flits_sent += 1
            if flit.is_tail:
                self._queue_pkts[qi] -= 1
            sent += 1
        return sent

    def queued_flits(self) -> int:
        return sum(len(q) for q in self.queues)

    def queued_packets(self) -> int:
        return sum(self._queue_pkts)

    def queue_depths(self) -> List[int]:
        return [len(q) for q in self.queues]

    # -- fault support -----------------------------------------------------
    def drop_queue_front(self, qi: int, now: int) -> Optional[Packet]:
        q = self.queues[qi]
        if not q or not q[0].is_head:
            return None  # empty, or mid-stream: let it drain first
        pkt = q[0].packet
        for _ in range(pkt.size):
            q.popleft()
        self._queue_pkts[qi] -= 1
        return pkt

    def relocate_queue_front(self, qi: int, now: int) -> bool:
        """Move the whole front packet of a (dead) split queue to a live
        queue with room — the retry path after a split-queue fault.

        Returns False when the packet is mid-stream or no live queue can
        hold it yet (the caller backs off and retries).
        """
        q = self.queues[qi]
        if not q or not q[0].is_head:
            return False
        pkt = q[0].packet
        target = self._find_queue(pkt.size)
        if target is None or target == qi:
            return False
        moved = [q.popleft() for _ in range(pkt.size)]
        self.queues[target].extend(moved)
        self._queue_pkts[qi] -= 1
        self._queue_pkts[target] += 1
        return True


class EjectionInterface:
    """Reassembles ejected flits into packets and delivers them to the node.

    ``on_packet(packet, now)`` is the delivery callback installed by the node
    (or by the network for stats-only sinks).

    When ``capacity_flits`` is finite, the interface backpressures the
    router's LOCAL output (via :meth:`can_accept_flit`) once its buffer is
    full.  With ``auto_release=False`` the attached node must call
    :meth:`release` when it consumes a packet — this is how a memory
    controller that stalls on the reply side propagates backpressure into
    the *request* network (the paper's "parking lot" effect, Sec. 3).
    """

    def __init__(
        self,
        node_id: int,
        capacity_flits: Optional[int] = None,
        auto_release: bool = True,
    ) -> None:
        self.node_id = node_id
        self.capacity_flits = capacity_flits
        self.auto_release = auto_release
        self._partial: Dict[int, int] = {}  # pid -> flits seen
        self.on_packet: Optional[Callable[[Packet, int], None]] = None
        self.packets_delivered = 0
        self.flits_received = 0
        self.flit_occupancy = 0

    def can_accept_flit(self) -> bool:
        if self.capacity_flits is None:
            return True
        return self.flit_occupancy < self.capacity_flits

    def receive_flit(self, flit: Flit, now: int) -> None:
        self.flits_received += 1
        self.flit_occupancy += 1
        pid = flit.packet.pid
        seen = self._partial.get(pid, 0) + 1
        if flit.is_tail:
            if seen != flit.packet.size:
                raise RuntimeError(
                    f"packet {pid} reassembly error: {seen}/{flit.packet.size} flits"
                )
            self._partial.pop(pid, None)
            flit.packet.received_at = now
            self.packets_delivered += 1
            if self.auto_release:
                self.flit_occupancy -= flit.packet.size
            if self.on_packet is not None:
                self.on_packet(flit.packet, now)
        else:
            self._partial[pid] = seen

    def release(self, flits: int) -> None:
        """Node consumed a packet; free its buffer space."""
        self.flit_occupancy -= flits
        if self.flit_occupancy < 0:
            raise RuntimeError("ejection buffer release underflow")

    @property
    def partially_received(self) -> int:
        return len(self._partial)


def make_ni(
    kind: NIKind,
    node_id: int,
    capacity_flits: int,
    num_vcs: int,
    num_split_queues: int = 4,
) -> InjectionInterface:
    """Factory for injection NIs."""
    if kind == NIKind.BASELINE_NARROW:
        return BaselineNI(node_id, capacity_flits, num_vcs)
    if kind == NIKind.ENHANCED:
        return EnhancedNI(node_id, capacity_flits, num_vcs)
    if kind == NIKind.MULTIPORT:
        return MultiPortNI(node_id, capacity_flits, num_vcs)
    if kind == NIKind.SPLIT:
        return SplitNI(node_id, capacity_flits, num_vcs, num_split_queues)
    raise ValueError(f"unknown NI kind: {kind!r}")
