"""Physical link model.

Links carry one flit per cycle (flits are sized to the link width, so a wider
link simply means fewer flits per packet — see
:func:`repro.noc.flit.packet_size_for`).  Each link records utilization so
the Section-3 analysis (injection links ~4.5x busier than in-network links)
can be reproduced.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.noc.flit import Flit


class Link:
    """A unidirectional pipelined link with ``latency`` cycles of delay."""

    __slots__ = (
        "name", "latency", "_pipe", "flits_carried", "busy_cycles",
        "is_injection", "failed",
    )

    def __init__(
        self, name: str = "", latency: int = 1, is_injection: bool = False
    ) -> None:
        if latency < 1:
            raise ValueError("link latency must be >= 1")
        self.name = name
        self.latency = latency
        self._pipe: Deque[Tuple[int, Flit]] = deque()  # (arrival_cycle, flit)
        self.flits_carried = 0
        self.busy_cycles = 0
        self.is_injection = is_injection
        # Fault-injection marker (repro.faults): a failed link is fenced at
        # allocation time, so send() is never reached for it; the flag is
        # observability state, not a hot-path check.
        self.failed = False

    def send(self, flit: Flit, now: int) -> None:
        """Put a flit onto the wire at cycle ``now``."""
        self._pipe.append((now + self.latency, flit))
        self.flits_carried += 1
        self.busy_cycles += 1

    _EMPTY: list = []

    def arrivals(self, now: int) -> list:
        """Flits whose wavefront reaches the far end at cycle ``now``."""
        pipe = self._pipe
        if not pipe or pipe[0][0] > now:
            return Link._EMPTY
        out = []
        while pipe and pipe[0][0] <= now:
            out.append(pipe.popleft()[1])
        return out

    @property
    def in_flight(self) -> int:
        return len(self._pipe)

    def pending_arrivals(self) -> Tuple[int, ...]:
        """Arrival cycles of flits currently on the wire (soonest first).

        Used by the activity-gated kernel to schedule receiver wakeups
        when it (re)builds its wake agenda from a cold network snapshot.
        """
        return tuple(entry[0] for entry in self._pipe)

    def utilization(self, elapsed_cycles: int) -> float:
        """Average flits per cycle carried over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.flits_carried / elapsed_cycles

    def reset_stats(self) -> None:
        self.flits_carried = 0
        self.busy_cycles = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Link({self.name!r}, lat={self.latency}, carried={self.flits_carried})"
