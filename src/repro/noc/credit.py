"""Credit-based flow control bookkeeping.

Each router output port tracks, per downstream virtual channel, how many free
buffer slots remain.  When a flit is sent downstream a credit is consumed;
when the downstream router drains a flit out of that VC it returns a credit
(after a configurable credit-return latency, default 1 cycle).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple


def credit_round_trip_cycles(
    link_latency: int = 1,
    credit_latency: int = 1,
    processing_cycles: int = 1,
) -> int:
    """Cycles between sending a flit and seeing its buffer slot credited back.

    The flit crosses the link (``link_latency``), the downstream router
    drains it (at least one ``processing_cycles``), and the credit rides
    the return wire (``credit_latency``).  A VC buffer shallower than this
    round trip cannot keep its link busy even with a ready sender — the
    sizing rule :mod:`repro.staticcheck` checks statically.
    """
    if link_latency < 0 or credit_latency < 0 or processing_cycles < 0:
        raise ValueError("latencies must be >= 0")
    return link_latency + credit_latency + processing_cycles


class CreditChannel:
    """Models the credit return wire from a downstream input port.

    Credits are enqueued with a delivery cycle and become visible to the
    upstream output port once the simulation time reaches that cycle.
    """

    __slots__ = ("latency", "_in_flight")

    def __init__(self, latency: int = 1) -> None:
        if latency < 0:
            raise ValueError("credit latency must be >= 0")
        self.latency = latency
        self._in_flight: Deque[Tuple[int, int]] = deque()  # (deliver_at, vc)

    def send(self, vc: int, now: int) -> None:
        """Downstream signals one freed slot in ``vc`` at cycle ``now``."""
        self._in_flight.append((now + self.latency, vc))

    _EMPTY: List[int] = []

    def deliver(self, now: int) -> List[int]:
        """Return the VCs whose credits arrive at cycle ``now`` (or earlier)."""
        q = self._in_flight
        if not q or q[0][0] > now:
            return CreditChannel._EMPTY
        out: List[int] = []
        while q and q[0][0] <= now:
            out.append(q.popleft()[1])
        return out

    @property
    def pending(self) -> int:
        return len(self._in_flight)


class CreditCounter:
    """Per-output-port credit state for every downstream VC."""

    __slots__ = ("counts", "capacity", "total")

    def __init__(self, num_vcs: int, vc_capacity: int) -> None:
        if num_vcs < 1 or vc_capacity < 1:
            raise ValueError("num_vcs and vc_capacity must be >= 1")
        self.capacity = vc_capacity
        self.counts: List[int] = [vc_capacity] * num_vcs
        # Running sum of ``counts`` — the adaptive-routing congestion
        # score reads it every retry, so it is maintained incrementally.
        # Callers that bypass consume()/restore() must keep it in step.
        self.total = num_vcs * vc_capacity

    def available(self, vc: int) -> int:
        return self.counts[vc]

    def has_credit(self, vc: int) -> bool:
        return self.counts[vc] > 0

    def consume(self, vc: int) -> None:
        if self.counts[vc] <= 0:
            raise RuntimeError(f"credit underflow on vc {vc}")
        self.counts[vc] -= 1
        self.total -= 1

    def restore(self, vc: int) -> None:
        if self.counts[vc] >= self.capacity:
            raise RuntimeError(f"credit overflow on vc {vc}")
        self.counts[vc] += 1
        self.total += 1

    def free_space(self, vc: int) -> int:
        """Alias of :meth:`available` used by WPF admission checks."""
        return self.counts[vc]
