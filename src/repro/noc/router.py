"""Virtual-channel wormhole router.

A single-cycle router model (route computation, VC allocation, switch
allocation and switch traversal resolve within one cycle; link traversal adds
one more), with:

* credit-based flow control toward downstream routers;
* whole-packet-forwarding (WPF) non-atomic VC allocation — a downstream VC
  may be (re)claimed whenever the *entire* packet fits in its free space and
  no other packet is currently being written into it;
* XY or minimal adaptive routing (escape VC 0 restricted to XY hops);
* per-input-port crossbar speedup — the ARI consumption-side mechanism
  (Sec. 4.2): MC-router injection ports receive ``S`` switch ports so up to
  ``S`` injected flits can traverse the switch per cycle;
* ARI multi-level prioritization (Sec. 5): packets carry a priority field,
  decremented each time a head flit enters a new router, and the switch
  allocator prefers higher-priority bids.  A starvation threshold demotes
  injection-port bids when any through-traffic input has waited too long.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.noc.allocator import Bid, SwitchAllocator
from repro.noc.buffer import InputPort, VCState, VirtualChannel
from repro.noc.credit import CreditChannel, CreditCounter
from repro.noc.link import Link
from repro.noc.routing import LOCAL, RoutingAlgorithm

# Sentinel "packet id" used by repro.faults to pin a dead output VC's writer
# lock: with ``writer[vc] = FAULT_PID`` and ``writer_left[vc] = 1`` the VC
# fails ``vc_claimable`` through the ordinary WPF path (no extra hot-path
# check) while still satisfying the writer-lock invariant (locked => left>0).
FAULT_PID = -1


class OutputPort:
    """Router output: link, downstream credit view and per-VC writer locks."""

    __slots__ = ("port_id", "link", "credits", "credit_in", "writer", "writer_left")

    def __init__(
        self,
        port_id: int,
        link: Optional[Link],
        num_vcs: int,
        credits: Optional[CreditCounter],
        credit_in: Optional[CreditChannel],
    ) -> None:
        self.port_id = port_id
        self.link = link
        self.credits = credits          # None => infinite (ejection sink)
        self.credit_in = credit_in      # credits returning from downstream
        # WPF writer locks: pid of the packet currently being streamed into
        # each downstream VC, and how many of its flits are still to send.
        self.writer: List[Optional[int]] = [None] * num_vcs
        self.writer_left: List[int] = [0] * num_vcs

    def vc_claimable(self, vc: int, size: int) -> bool:
        if self.writer[vc] is not None:
            return False
        if self.credits is not None and self.credits.free_space(vc) < size:
            return False
        return True

    def claim(self, vc: int, pid: int, size: int) -> None:
        if self.writer[vc] is not None:
            raise RuntimeError(f"output vc {vc} already claimed")
        self.writer[vc] = pid
        self.writer_left[vc] = size

    def record_send(self, vc: int, pid: int) -> None:
        if self.writer[vc] != pid:
            raise RuntimeError("flit sent into a VC claimed by another packet")
        self.writer_left[vc] -= 1
        if self.writer_left[vc] == 0:
            self.writer[vc] = None

    def free_credit_total(self) -> int:
        """Congestion score used by adaptive routing (bigger = freer)."""
        if self.credits is None:
            return 1 << 20
        return sum(self.credits.counts)


class Router:
    """One mesh router; see module docstring for the microarchitecture."""

    def __init__(
        self,
        router_id: int,
        coords: Tuple[int, int],
        routing: RoutingAlgorithm,
        num_vcs: int = 4,
        vc_capacity: int = 9,
        num_injection_ports: int = 1,
        injection_speedup: int = 1,
        priority_enabled: bool = False,
        starvation_threshold: int = 1000,
    ) -> None:
        if num_injection_ports < 1:
            raise ValueError("need at least one injection port")
        if injection_speedup < 1:
            raise ValueError("injection speedup must be >= 1")
        self.router_id = router_id
        self.coords = coords
        self.routing = routing
        self.num_vcs = num_vcs
        self.vc_capacity = vc_capacity
        self.priority_enabled = priority_enabled
        self.starvation_threshold = starvation_threshold
        self.num_injection_ports = num_injection_ports

        # Input ports: 0..3 mesh directions, 4.. injection ports.
        self.input_ports: List[InputPort] = [
            InputPort(p, num_vcs, vc_capacity) for p in range(4)
        ]
        for k in range(num_injection_ports):
            self.input_ports.append(
                InputPort(4 + k, num_vcs, vc_capacity, is_injection=True)
            )
        self.num_inputs = len(self.input_ports)

        # Output ports: 0..3 mesh directions + LOCAL ejection (index 4).
        self.output_ports: List[Optional[OutputPort]] = [None] * 5

        # Input-side links & credit-return channels (to upstream).
        self.input_links: List[Optional[Link]] = [None] * self.num_inputs
        self.credit_out: List[Optional[CreditChannel]] = [None] * self.num_inputs
        # Injection credits go straight back to the NI:
        self.ni = None  # type: Optional[object]

        speedups = {
            4 + k: injection_speedup for k in range(num_injection_ports)
        }
        self.allocator = SwitchAllocator(
            num_in=self.num_inputs, num_out=5, num_vcs=num_vcs, speedups=speedups
        )

        # VA fairness rotation.
        self._va_rr = 0

        # Optional backpressure gate on the ejection (LOCAL) output; wired
        # by the network to the attached ejection interface's buffer state.
        self.ejection_gate = None  # type: Optional[callable]

        # Optional per-hop observer: called once per head flit accepted
        # into this router (i.e. per route computation), after the ARI
        # priority decay has been applied.  Same opt-in contract as the
        # telemetry hook: None (the default) costs one comparison.
        self.on_hop = None  # type: Optional[callable]

        # Maintained flit occupancy (sum over input ports).
        self._occ = 0

        # Stats.
        self.flits_switched = 0
        self.flits_injected = 0  # flits that crossed the switch from injection ports
        self.starvation_demotions = 0
        self.priority_decays = 0   # head flits whose ARI priority dropped here
        # Flits beyond the 1/cycle baseline that the injection crossbar
        # speedup moved in a single cycle (Sec. 4.2 usage telemetry).
        self.speedup_extra_flits = 0

    # -- wiring -----------------------------------------------------------
    def set_output(
        self,
        port: int,
        link: Link,
        credit_in: CreditChannel,
        downstream_vc_capacity: int,
    ) -> None:
        self.output_ports[port] = OutputPort(
            port,
            link,
            self.num_vcs,
            CreditCounter(self.num_vcs, downstream_vc_capacity),
            credit_in,
        )

    def set_ejection(self, link: Link) -> None:
        self.output_ports[LOCAL] = OutputPort(LOCAL, link, self.num_vcs, None, None)

    def set_input(self, port: int, link: Link, credit_out: CreditChannel) -> None:
        self.input_links[port] = link
        self.credit_out[port] = credit_out

    def attach_ni(self, ni) -> None:
        self.ni = ni

    def injection_port_ids(self) -> List[int]:
        return [4 + k for k in range(self.num_injection_ports)]

    # -- helpers ------------------------------------------------------------
    def occupancy(self) -> int:
        return self._occ

    def _ingest(self, now: int) -> None:
        """Pull arriving flits off input links into their target VCs."""
        for port_idx, link in enumerate(self.input_links):
            if link is None:
                continue
            for flit in link.arrivals(now):
                vc = flit.out_vc
                if vc is None:
                    raise RuntimeError("arriving flit has no VC assignment")
                port = self.input_ports[port_idx]
                if flit.is_head:
                    if not port.is_injection:
                        # ARI priority decay: one level per route computation
                        # (i.e., per router entered after injection).
                        pkt = flit.packet
                        if pkt.priority > 0:
                            pkt.priority -= 1
                            self.priority_decays += 1
                    if flit.packet.injected_at is None:
                        flit.packet.injected_at = now
                    if self.on_hop is not None:
                        self.on_hop(self.router_id, flit.packet, now)
                # Reset transient routing state; it belongs to this router now.
                flit.out_port = None
                flit.out_vc = None
                port.vcs[vc].push(flit, now)
                port.occ += 1
                self._occ += 1

    def _deliver_credits(self, now: int) -> None:
        for out in self.output_ports:
            if out is None or out.credit_in is None or out.credits is None:
                continue
            for vc in out.credit_in.deliver(now):
                out.credits.restore(vc)

    # -- route computation + VC allocation ----------------------------------
    def _route_and_allocate(self, now: int) -> None:
        dest_coords = self._dest_coords
        n_in = self.num_inputs
        start = self._va_rr
        self._va_rr = (self._va_rr + 1) % n_in
        for off in range(n_in):
            port = self.input_ports[(start + off) % n_in]
            if port.occ == 0:
                continue
            for vc in port.vcs:
                if vc.state != VCState.ROUTING:
                    continue
                head = vc.fifo[0]
                pkt = head.packet
                if vc.candidates is None:
                    dc = dest_coords(pkt.dest)
                    vc.candidates = self.routing.candidates(self.coords, dc)
                    vc.escape = self.routing.escape_port(self.coords, dc)
                self._try_allocate(vc, pkt)

    def _try_allocate(self, vc: VirtualChannel, pkt) -> bool:
        candidates = vc.candidates or []
        if self.routing.adaptive and len(candidates) > 1:
            candidates = sorted(
                candidates,
                key=lambda p: -(self.output_ports[p].free_credit_total()
                                if self.output_ports[p] is not None else -1),
            )
        escape = vc.escape if vc.escape is not None else LOCAL
        for out_port in candidates:
            out = self.output_ports[out_port]
            if out is None:
                continue
            if out_port == LOCAL:
                # Ejection: claim any free writer slot (infinite credits).
                for dvc in range(self.num_vcs):
                    if out.writer[dvc] is None:
                        self._commit_allocation(vc, out, out_port, dvc, pkt)
                        return True
                continue
            # Prefer adaptive VCs (leave the escape VC as a fallback).
            vc_order = list(range(1, self.num_vcs)) + [0]
            for dvc in vc_order:
                if not self.routing.vc_allowed(dvc, out_port, escape):
                    continue
                if not out.vc_claimable(dvc, pkt.size):
                    continue
                self._commit_allocation(vc, out, out_port, dvc, pkt)
                return True
        return False

    def _commit_allocation(
        self, vc: VirtualChannel, out: OutputPort, out_port: int, dvc: int, pkt
    ) -> None:
        vc.set_route(out_port)
        vc.set_out_vc(dvc)
        out.claim(dvc, pkt.pid, pkt.size)

    # -- switch allocation / traversal ----------------------------------------
    def _collect_bids(self, now: int) -> List[Bid]:
        bids: List[Bid] = []
        demote_injection = False
        if self.priority_enabled and self.starvation_threshold > 0:
            for port in self.input_ports:
                if port.is_injection:
                    continue
                if port.oldest_wait(now) > self.starvation_threshold:
                    demote_injection = True
                    break
        ejection_open = self.ejection_gate is None or self.ejection_gate()
        for port in self.input_ports:
            if port.occ == 0:
                continue
            for vc in port.vcs:
                if vc.state != VCState.ACTIVE or not vc.fifo:
                    continue
                out_port = vc.out_port
                if out_port is None:
                    continue
                if out_port == LOCAL and not ejection_open:
                    continue
                prio = vc.fifo[0].packet.priority if self.priority_enabled else 0
                if demote_injection and port.is_injection:
                    prio = 0
                    self.starvation_demotions += 1
                bids.append(Bid(port.port_id, vc.index, out_port, prio))
        return bids

    def _traverse(self, winners: List[Bid], now: int) -> int:
        moved = 0
        injected = 0
        for bid in winners:
            port = self.input_ports[bid.in_port]
            vc = port.vcs[bid.vc]
            out_port = vc.out_port
            out_vc = vc.out_vc
            out = self.output_ports[out_port]
            flit = vc.front()
            if flit is None or out is None or out_vc is None:
                raise RuntimeError("switch grant for an empty VC")
            flit.out_port = out_port
            flit.out_vc = out_vc
            vc.pop(now)
            port.occ -= 1
            self._occ -= 1
            if out.credits is not None:
                out.credits.consume(out_vc)
            out.record_send(out_vc, flit.packet.pid)
            out.link.send(flit, now)
            # Return the freed buffer slot upstream.
            if port.is_injection:
                if self.ni is not None:
                    self.ni.on_credit(port.port_id, bid.vc)
                self.flits_injected += 1
                injected += 1
            else:
                ch = self.credit_out[bid.in_port]
                if ch is not None:
                    ch.send(bid.vc, now)
            moved += 1
        if injected > 1:
            self.speedup_extra_flits += injected - 1
        self.flits_switched += moved
        return moved

    # -- fault support ----------------------------------------------------------
    def purge_front_packet(self, port_id: int, vc_index: int, now: int):
        """Remove the whole packet at the front of an input VC (fault drop).

        Used by :mod:`repro.faults` for packets that can never make
        progress (e.g. routed toward a destination cut off mid-flight).
        Only legal before the packet starts streaming downstream: the VC
        must be ROUTING with the head at the front and every flit of the
        packet resident.  Buffer credits are returned upstream flit by
        flit exactly as if the packet had traversed the switch, so credit
        conservation holds.  Returns the purged Packet, or None when the
        state does not allow a clean purge (caller retries next cycle).
        """
        port = self.input_ports[port_id]
        vc = port.vcs[vc_index]
        if vc.state != VCState.ROUTING or not vc.fifo:
            return None
        head = vc.fifo[0]
        if not head.is_head:
            return None
        pkt = head.packet
        resident = 0
        for f in vc.fifo:
            if f.packet is not pkt:
                break
            resident += 1
        if resident < pkt.size:
            return None  # tail still streaming in from upstream
        for _ in range(pkt.size):
            vc.fifo.popleft()
        port.occ -= pkt.size
        self._occ -= pkt.size
        # Per-flit credit return mirrors _traverse().
        if port.is_injection:
            if self.ni is not None:
                for _ in range(pkt.size):
                    self.ni.on_credit(port_id, vc_index)
        else:
            ch = self.credit_out[port_id]
            if ch is not None:
                for _ in range(pkt.size):
                    ch.send(vc_index, now)
        # Reset route state by hand: pop() only understands flits that won
        # switch allocation, and a body front without a route would trip
        # _on_new_front's consistency check.
        vc.out_port = None
        vc.out_vc = None
        vc.candidates = None
        vc.escape = None
        vc.state = VCState.IDLE
        vc.wait_since = None
        if vc.fifo:
            vc._on_new_front(now)
        return pkt

    # -- main step --------------------------------------------------------------
    def step(self, now: int) -> int:
        """Advance the router one cycle; returns flits switched."""
        self._deliver_credits(now)
        self._ingest(now)
        if self._occ == 0:
            return 0
        self._route_and_allocate(now)
        bids = self._collect_bids(now)
        if not bids:
            return 0
        winners = self.allocator.allocate(bids)
        return self._traverse(winners, now)

    # The network installs this: maps a destination node id to mesh coords.
    _dest_coords = None  # type: ignore[assignment]

    def set_dest_coords_fn(self, fn) -> None:
        self._dest_coords = fn

    def __repr__(self) -> str:  # pragma: no cover
        return f"Router(id={self.router_id}, at={self.coords})"
