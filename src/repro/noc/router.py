"""Virtual-channel wormhole router.

A single-cycle router model (route computation, VC allocation, switch
allocation and switch traversal resolve within one cycle; link traversal adds
one more), with:

* credit-based flow control toward downstream routers;
* whole-packet-forwarding (WPF) non-atomic VC allocation — a downstream VC
  may be (re)claimed whenever the *entire* packet fits in its free space and
  no other packet is currently being written into it;
* XY or minimal adaptive routing (escape VC 0 restricted to XY hops);
* per-input-port crossbar speedup — the ARI consumption-side mechanism
  (Sec. 4.2): MC-router injection ports receive ``S`` switch ports so up to
  ``S`` injected flits can traverse the switch per cycle;
* ARI multi-level prioritization (Sec. 5): packets carry a priority field,
  decremented each time a head flit enters a new router, and the switch
  allocator prefers higher-priority bids.  A starvation threshold demotes
  injection-port bids when any through-traffic input has waited too long.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.noc.allocator import Bid, SwitchAllocator
from repro.noc.buffer import InputPort, VCState, VirtualChannel
from repro.noc.credit import CreditChannel, CreditCounter
from repro.noc.link import Link
from repro.noc.routing import (
    LOCAL,
    MinimalAdaptiveRouting,
    RoutingAlgorithm,
    XYRouting,
)

# Sentinel "packet id" used by repro.faults to pin a dead output VC's writer
# lock: with ``writer[vc] = FAULT_PID`` and ``writer_left[vc] = 1`` the VC
# fails ``vc_claimable`` through the ordinary WPF path (no extra hot-path
# check) while still satisfying the writer-lock invariant (locked => left>0).
FAULT_PID = -1


class OutputPort:
    """Router output: link, downstream credit view and per-VC writer locks."""

    __slots__ = ("port_id", "link", "credits", "credit_in", "writer", "writer_left")

    def __init__(
        self,
        port_id: int,
        link: Optional[Link],
        num_vcs: int,
        credits: Optional[CreditCounter],
        credit_in: Optional[CreditChannel],
    ) -> None:
        self.port_id = port_id
        self.link = link
        self.credits = credits          # None => infinite (ejection sink)
        self.credit_in = credit_in      # credits returning from downstream
        # WPF writer locks: pid of the packet currently being streamed into
        # each downstream VC, and how many of its flits are still to send.
        self.writer: List[Optional[int]] = [None] * num_vcs
        self.writer_left: List[int] = [0] * num_vcs

    def vc_claimable(self, vc: int, size: int) -> bool:
        if self.writer[vc] is not None:
            return False
        if self.credits is not None and self.credits.free_space(vc) < size:
            return False
        return True

    def claim(self, vc: int, pid: int, size: int) -> None:
        if self.writer[vc] is not None:
            raise RuntimeError(f"output vc {vc} already claimed")
        self.writer[vc] = pid
        self.writer_left[vc] = size

    def record_send(self, vc: int, pid: int) -> None:
        if self.writer[vc] != pid:
            raise RuntimeError("flit sent into a VC claimed by another packet")
        self.writer_left[vc] -= 1
        if self.writer_left[vc] == 0:
            self.writer[vc] = None

    def free_credit_total(self) -> int:
        """Congestion score used by adaptive routing (bigger = freer)."""
        if self.credits is None:
            return 1 << 20
        return self.credits.total


class Router:
    """One mesh router; see module docstring for the microarchitecture."""

    def __init__(
        self,
        router_id: int,
        coords: Tuple[int, int],
        routing: RoutingAlgorithm,
        num_vcs: int = 4,
        vc_capacity: int = 9,
        num_injection_ports: int = 1,
        injection_speedup: int = 1,
        priority_enabled: bool = False,
        starvation_threshold: int = 1000,
    ) -> None:
        if num_injection_ports < 1:
            raise ValueError("need at least one injection port")
        if injection_speedup < 1:
            raise ValueError("injection speedup must be >= 1")
        self.router_id = router_id
        self.coords = coords
        self.routing = routing
        self.num_vcs = num_vcs
        self.vc_capacity = vc_capacity
        self.priority_enabled = priority_enabled
        self.starvation_threshold = starvation_threshold
        self.num_injection_ports = num_injection_ports

        # Input ports: 0..3 mesh directions, 4.. injection ports.
        self.input_ports: List[InputPort] = [
            InputPort(p, num_vcs, vc_capacity) for p in range(4)
        ]
        for k in range(num_injection_ports):
            self.input_ports.append(
                InputPort(4 + k, num_vcs, vc_capacity, is_injection=True)
            )
        self.num_inputs = len(self.input_ports)

        # Output ports: 0..3 mesh directions + LOCAL ejection (index 4).
        self.output_ports: List[Optional[OutputPort]] = [None] * 5

        # Input-side links & credit-return channels (to upstream).
        self.input_links: List[Optional[Link]] = [None] * self.num_inputs
        self.credit_out: List[Optional[CreditChannel]] = [None] * self.num_inputs
        # Injection credits go straight back to the NI:
        self.ni = None  # type: Optional[object]

        speedups = {
            4 + k: injection_speedup for k in range(num_injection_ports)
        }
        self.allocator = SwitchAllocator(
            num_in=self.num_inputs, num_out=5, num_vcs=num_vcs, speedups=speedups
        )

        # VA fairness rotation.
        self._va_rr = 0

        # Prefer adaptive VCs, escape VC 0 last (shared by both pipelines).
        self._vc_order = tuple(range(1, num_vcs)) + (0,)
        # Wiring tables for step_fast(); built lazily once links exist.
        # Activity-kernel bookkeeping, invisible to the reference
        # pipeline by design.  # kernel: private(Router._fast_wiring, Router._stall_ok)
        self._fast_wiring = None
        # Set by step_fast() on a zero-move cycle: True when every blocked
        # resource unblocks only through events the activity kernel already
        # schedules wakeups for (flit arrivals, credit returns), so the
        # kernel may skip this router until the next wakeup.  A closed
        # ejection gate reopens on external ejector drain — no wakeup
        # exists for that, so it forces False.
        self._stall_ok = True

        # Optional backpressure gate on the ejection (LOCAL) output; wired
        # by the network to the attached ejection interface's buffer state.
        self.ejection_gate = None  # type: Optional[callable]

        # Optional per-hop observer: called once per head flit accepted
        # into this router (i.e. per route computation), after the ARI
        # priority decay has been applied.  Same opt-in contract as the
        # telemetry hook: None (the default) costs one comparison.
        self.on_hop = None  # type: Optional[callable]

        # Maintained flit occupancy (sum over input ports).
        self._occ = 0

        # Stats.
        self.flits_switched = 0
        self.flits_injected = 0  # flits that crossed the switch from injection ports
        self.starvation_demotions = 0
        self.priority_decays = 0   # head flits whose ARI priority dropped here
        # Flits beyond the 1/cycle baseline that the injection crossbar
        # speedup moved in a single cycle (Sec. 4.2 usage telemetry).
        self.speedup_extra_flits = 0

    # -- wiring -----------------------------------------------------------
    def set_output(
        self,
        port: int,
        link: Link,
        credit_in: CreditChannel,
        downstream_vc_capacity: int,
    ) -> None:
        self.output_ports[port] = OutputPort(
            port,
            link,
            self.num_vcs,
            CreditCounter(self.num_vcs, downstream_vc_capacity),
            credit_in,
        )

    def set_ejection(self, link: Link) -> None:
        self.output_ports[LOCAL] = OutputPort(LOCAL, link, self.num_vcs, None, None)

    def set_input(self, port: int, link: Link, credit_out: CreditChannel) -> None:
        self.input_links[port] = link
        self.credit_out[port] = credit_out

    def attach_ni(self, ni) -> None:
        self.ni = ni

    def injection_port_ids(self) -> List[int]:
        return [4 + k for k in range(self.num_injection_ports)]

    # -- helpers ------------------------------------------------------------
    def occupancy(self) -> int:
        return self._occ

    def _ingest(self, now: int) -> None:
        """Pull arriving flits off input links into their target VCs."""
        for port_idx, link in enumerate(self.input_links):
            if link is None:
                continue
            for flit in link.arrivals(now):
                vc = flit.out_vc
                if vc is None:
                    raise RuntimeError("arriving flit has no VC assignment")
                port = self.input_ports[port_idx]
                if flit.is_head:
                    if not port.is_injection:
                        # ARI priority decay: one level per route computation
                        # (i.e., per router entered after injection).
                        pkt = flit.packet
                        if pkt.priority > 0:
                            pkt.priority -= 1
                            self.priority_decays += 1
                    if flit.packet.injected_at is None:
                        flit.packet.injected_at = now
                    if self.on_hop is not None:
                        self.on_hop(self.router_id, flit.packet, now)
                # Reset transient routing state; it belongs to this router now.
                flit.out_port = None
                flit.out_vc = None
                port.vcs[vc].push(flit, now)
                port.occ += 1
                self._occ += 1

    def _deliver_credits(self, now: int) -> None:
        for out in self.output_ports:
            if out is None or out.credit_in is None or out.credits is None:
                continue
            for vc in out.credit_in.deliver(now):
                out.credits.restore(vc)

    # -- route computation + VC allocation ----------------------------------
    def _route_and_allocate(self, now: int) -> None:
        dest_coords = self._dest_coords
        n_in = self.num_inputs
        start = self._va_rr
        self._va_rr = (self._va_rr + 1) % n_in
        for off in range(n_in):
            port = self.input_ports[(start + off) % n_in]
            if port.occ == 0:
                continue
            for vc in port.vcs:
                if vc.state != VCState.ROUTING:
                    continue
                head = vc.fifo[0]
                pkt = head.packet
                if vc.candidates is None:
                    dc = dest_coords(pkt.dest)
                    vc.candidates = self.routing.candidates(self.coords, dc)
                    vc.escape = self.routing.escape_port(self.coords, dc)
                self._try_allocate(vc, pkt)

    def _try_allocate(self, vc: VirtualChannel, pkt) -> bool:
        candidates = vc.candidates or []
        if self.routing.adaptive and len(candidates) > 1:
            candidates = sorted(
                candidates,
                key=lambda p: -(self.output_ports[p].free_credit_total()
                                if self.output_ports[p] is not None else -1),
            )
        escape = vc.escape if vc.escape is not None else LOCAL
        for out_port in candidates:
            out = self.output_ports[out_port]
            if out is None:
                continue
            if out_port == LOCAL:
                # Ejection: claim any free writer slot (infinite credits).
                for dvc in range(self.num_vcs):
                    if out.writer[dvc] is None:
                        self._commit_allocation(vc, out, out_port, dvc, pkt)
                        return True
                continue
            # Prefer adaptive VCs (leave the escape VC as a fallback).
            for dvc in self._vc_order:
                if not self.routing.vc_allowed(dvc, out_port, escape):
                    continue
                if not out.vc_claimable(dvc, pkt.size):
                    continue
                self._commit_allocation(vc, out, out_port, dvc, pkt)
                return True
        return False

    def _commit_allocation(
        self, vc: VirtualChannel, out: OutputPort, out_port: int, dvc: int, pkt
    ) -> None:
        vc.set_route(out_port)
        vc.set_out_vc(dvc)
        out.claim(dvc, pkt.pid, pkt.size)

    # -- switch allocation / traversal ----------------------------------------
    def _collect_bids(self, now: int) -> List[Bid]:
        bids: List[Bid] = []
        demote_injection = False
        if self.priority_enabled and self.starvation_threshold > 0:
            for port in self.input_ports:
                if port.is_injection:
                    continue
                if port.oldest_wait(now) > self.starvation_threshold:
                    demote_injection = True
                    break
        ejection_open = self.ejection_gate is None or self.ejection_gate()
        for port in self.input_ports:
            if port.occ == 0:
                continue
            for vc in port.vcs:
                if vc.state != VCState.ACTIVE or not vc.fifo:
                    continue
                out_port = vc.out_port
                if out_port is None:
                    continue
                if out_port == LOCAL and not ejection_open:
                    continue
                prio = vc.fifo[0].packet.priority if self.priority_enabled else 0
                if demote_injection and port.is_injection:
                    prio = 0
                    self.starvation_demotions += 1
                bids.append(Bid(port.port_id, vc.index, out_port, prio))
        return bids

    def _traverse(self, winners: List[Bid], now: int) -> int:
        moved = 0
        injected = 0
        for bid in winners:
            port = self.input_ports[bid.in_port]
            vc = port.vcs[bid.vc]
            out_port = vc.out_port
            out_vc = vc.out_vc
            out = self.output_ports[out_port]
            flit = vc.front()
            if flit is None or out is None or out_vc is None:
                raise RuntimeError("switch grant for an empty VC")
            flit.out_port = out_port
            flit.out_vc = out_vc
            vc.pop(now)
            port.occ -= 1
            self._occ -= 1
            if out.credits is not None:
                out.credits.consume(out_vc)
            out.record_send(out_vc, flit.packet.pid)
            out.link.send(flit, now)
            # Return the freed buffer slot upstream.
            if port.is_injection:
                if self.ni is not None:
                    self.ni.on_credit(port.port_id, bid.vc)
                self.flits_injected += 1
                injected += 1
            else:
                ch = self.credit_out[bid.in_port]
                if ch is not None:
                    ch.send(bid.vc, now)
            moved += 1
        if injected > 1:
            self.speedup_extra_flits += injected - 1
        self.flits_switched += moved
        return moved

    # -- fault support ----------------------------------------------------------
    def purge_front_packet(self, port_id: int, vc_index: int, now: int):
        """Remove the whole packet at the front of an input VC (fault drop).

        Used by :mod:`repro.faults` for packets that can never make
        progress (e.g. routed toward a destination cut off mid-flight).
        Only legal before the packet starts streaming downstream: the VC
        must be ROUTING with the head at the front and every flit of the
        packet resident.  Buffer credits are returned upstream flit by
        flit exactly as if the packet had traversed the switch, so credit
        conservation holds.  Returns the purged Packet, or None when the
        state does not allow a clean purge (caller retries next cycle).
        """
        port = self.input_ports[port_id]
        vc = port.vcs[vc_index]
        if vc.state != VCState.ROUTING or not vc.fifo:
            return None
        head = vc.fifo[0]
        if not head.is_head:
            return None
        pkt = head.packet
        resident = 0
        for f in vc.fifo:
            if f.packet is not pkt:
                break
            resident += 1
        if resident < pkt.size:
            return None  # tail still streaming in from upstream
        for _ in range(pkt.size):
            vc.fifo.popleft()
        port.occ -= pkt.size
        self._occ -= pkt.size
        # Per-flit credit return mirrors _traverse().
        if port.is_injection:
            if self.ni is not None:
                for _ in range(pkt.size):
                    self.ni.on_credit(port_id, vc_index)
        else:
            ch = self.credit_out[port_id]
            if ch is not None:
                for _ in range(pkt.size):
                    ch.send(vc_index, now)
        # Reset route state by hand: pop() only understands flits that won
        # switch allocation, and a body front without a route would trip
        # _on_new_front's consistency check.
        vc.out_port = None
        vc.out_vc = None
        vc.candidates = None
        vc.escape = None
        vc.state = VCState.IDLE
        vc.wait_since = None
        if vc.fifo:
            vc._on_new_front(now)
        return pkt

    # -- main step --------------------------------------------------------------
    def step(self, now: int) -> int:
        """Advance the router one cycle; returns flits switched."""
        self._deliver_credits(now)
        self._ingest(now)
        if self._occ == 0:
            return 0
        self._route_and_allocate(now)
        bids = self._collect_bids(now)
        if not bids:
            return 0
        winners = self.allocator.allocate(bids)
        return self._traverse(winners, now)

    # -- fast pipeline (ActivityKernel) -----------------------------------------
    def _build_fast_wiring(self):
        """Precompute the wiring tables :meth:`step_fast` iterates.

        ``credited``: (in-flight deque, credit counter) pairs for output
        ports with a credit-return channel.
        ``inputs``: (input port, link, pipe) triples for wired links; the
        pipe deque is captured for plain links so empty links cost one
        bounds check instead of an ``arrivals()`` call (composite SplitNI
        bundles keep ``pipe=None`` and go through ``arrivals``).
        ``vc_rule``: 0 = every VC legal (XY), 1 = escape-VC-0 rule
        (minimal adaptive), 2 = ask ``routing.vc_allowed`` (anything
        else, e.g. fault-detour wrappers).
        """
        credited = tuple(
            (out.credit_in._in_flight, out.credits)
            for out in self.output_ports
            if out is not None
            and out.credit_in is not None
            and out.credits is not None
        )
        inputs = []
        for idx, link in enumerate(self.input_links):
            if link is None:
                continue
            inputs.append(
                (self.input_ports[idx], link, getattr(link, "_pipe", None))
            )
        rt = type(self.routing)
        if rt is XYRouting:
            vc_rule = 0
        elif rt is MinimalAdaptiveRouting:
            vc_rule = 1
        else:
            vc_rule = 2
        alloc = self.allocator
        wiring = (
            credited,
            tuple(inputs),
            vc_rule,
            alloc._input_arbiters,
            alloc._output_arbiters,
        )
        self._fast_wiring = wiring
        return wiring

    def step_fast(self, now: int, ingest: bool = True) -> int:
        """Byte-identical fast equivalent of :meth:`step`.

        Same state evolution, arbitration outcomes and statistics as the
        reference pipeline, with the Python-level overhead stripped:
        precomputed wiring tables, inlined credit delivery and flit
        ingestion, and conflict-free switch allocation resolved without
        arbiter scans (the round-robin pointers are updated exactly as
        the arbiters would have).  Only the activity kernel calls this;
        the reference kernel keeps the readable pipeline above and the
        kernel-equivalence suite pins the two together.
        """
        wiring = self._fast_wiring
        if wiring is None:
            wiring = self._build_fast_wiring()
        credited, inputs, vc_rule, in_arbs, out_arbs = wiring
        routing_state = VCState.ROUTING
        active_state = VCState.ACTIVE

        if ingest:
            # -- credit delivery (matches _deliver_credits) ---------------
            for q, credits in credited:
                if q and q[0][0] <= now:
                    counts = credits.counts
                    cap = credits.capacity
                    while q and q[0][0] <= now:
                        v = q.popleft()[1]
                        if counts[v] >= cap:
                            raise RuntimeError(f"credit overflow on vc {v}")
                        counts[v] += 1
                        credits.total += 1

            # -- ingest (matches _ingest) ---------------------------------
            occ_add = 0
            on_hop = self.on_hop
            for port, link, pipe in inputs:
                if pipe is not None:
                    if not pipe or pipe[0][0] > now:
                        continue
                    arr = []
                    while pipe and pipe[0][0] <= now:
                        arr.append(pipe.popleft()[1])
                else:
                    arr = link.arrivals(now)
                    if not arr:
                        continue
                vcs = port.vcs
                is_inj = port.is_injection
                cnt = 0
                for flit in arr:
                    vc = flit.out_vc
                    if vc is None:
                        raise RuntimeError(
                            "arriving flit has no VC assignment"
                        )
                    if flit.is_head:
                        pkt = flit.packet
                        if not is_inj and pkt.priority > 0:
                            pkt.priority -= 1
                            self.priority_decays += 1
                        if pkt.injected_at is None:
                            pkt.injected_at = now
                        if on_hop is not None:
                            on_hop(self.router_id, pkt, now)
                    flit.out_port = None
                    flit.out_vc = None
                    # Inlined VirtualChannel.push (same transitions/raises).
                    vcq = vcs[vc]
                    fifo = vcq.fifo
                    if vcq.capacity - len(fifo) <= 0:
                        raise RuntimeError(f"VC {vc} overflow")
                    flit.vc = vc
                    # Space was reserved upstream by the credit the sender
                    # consumed; the overflow raise above is an assertion,
                    # not flow control.
                    fifo.append(flit)  # proto: allow(proto-push-guard)
                    if len(fifo) == 1:
                        vcq.wait_since = now
                        if flit.is_head:
                            if (
                                vcq.state is not active_state
                                or vcq.out_port is None
                            ):
                                vcq.state = routing_state
                        else:
                            if vcq.out_port is None:
                                raise RuntimeError(
                                    "body flit at VC front without a route"
                                )
                            vcq.state = active_state
                    cnt += 1
                port.occ += cnt
                occ_add += cnt
            if occ_add:
                self._occ += occ_add
        if self._occ == 0:
            return 0

        # -- route + VC allocation + bid collection, one rotated pass ------
        # The reference pipeline makes two sweeps (rotation-ordered routing,
        # then index-ordered bid collection).  One rotated sweep produces
        # the same outcome: allocation order is preserved exactly, a VC
        # allocated this cycle is ACTIVE by the time its bid is taken (the
        # single-cycle router bids newly-routed VCs immediately in both
        # pipelines), and the separable allocator resolves each input and
        # each output independently, so the order bids are *listed* in
        # cannot change any grant.
        ports = self.input_ports
        n_in = self.num_inputs
        start = self._va_rr
        nxt = start + 1
        self._va_rr = nxt if nxt < n_in else 0
        dest_coords = self._dest_coords
        routing = self.routing
        coords = self.coords
        prio_on = self.priority_enabled
        gate = self.ejection_gate
        ejection_open = True if gate is None else None  # None = not asked yet
        bid_ports: List[int] = []      # ports with bids, first-bid order
        port_bids: List[Optional[list]] = [None] * n_in
        injection_bids = False
        stall_ok = True
        i = start - n_in
        while i < start:
            port = ports[i]
            i += 1
            if port.occ == 0:
                continue
            blist = None
            for vcobj in port.vcs:
                st = vcobj.state
                if st is routing_state:
                    pkt = vcobj.fifo[0].packet
                    if vcobj.candidates is None:
                        dc = dest_coords(pkt.dest)
                        vcobj.candidates = routing.candidates(coords, dc)
                        vcobj.escape = routing.escape_port(coords, dc)
                    if not self._try_allocate_fast(vcobj, pkt, vc_rule):
                        continue
                    # Allocated this cycle => ACTIVE with a head flit: bid.
                elif st is not active_state or not vcobj.fifo:
                    continue
                out_port = vcobj.out_port
                if out_port is None:
                    continue
                if out_port == LOCAL:
                    if ejection_open is None:
                        ejection_open = gate()
                    if not ejection_open:
                        stall_ok = False
                        continue
                prio = vcobj.fifo[0].packet.priority if prio_on else 0
                if blist is None:
                    blist = []
                    port_bids[port.port_id] = blist
                    bid_ports.append(port.port_id)
                    if port.is_injection:
                        injection_bids = True
                blist.append((vcobj.index, out_port, prio))
        if not bid_ports:
            self._stall_ok = stall_ok
            return 0

        # Starvation demotion (matches _collect_bids): only observable when
        # an injection port actually bids, so the waiting-time scan is
        # skipped on pure through-routers.
        if injection_bids and prio_on and self.starvation_threshold > 0:
            thr = self.starvation_threshold
            demote = False
            for port in ports:
                if port.is_injection:
                    continue
                for vcobj in port.vcs:
                    ws = vcobj.wait_since
                    if ws is not None and vcobj.fifo and now - ws > thr:
                        demote = True
                        break
                if demote:
                    break
            if demote:
                for p in bid_ports:
                    if ports[p].is_injection:
                        blist = port_bids[p]
                        self.starvation_demotions += len(blist)
                        port_bids[p] = [(v, o, 0) for v, o, _pr in blist]

        # Single-bid fast paths: when every bidding input has exactly one
        # bid, stage 1 is trivial (single requester wins, pointer advances
        # past it).  If the outputs are also distinct, stage 2 collapses
        # the same way; otherwise only the conflicted outputs need a real
        # output-arbiter round.
        fast_grants = []
        omask = 0
        conflict = 0
        for p in bid_ports:
            blist = port_bids[p]
            if len(blist) != 1:
                fast_grants = None
                break
            v, o, _pr = blist[0]
            ob = 1 << o
            if omask & ob:
                conflict |= ob
            omask |= ob
            fast_grants.append((p, v, o))
        if fast_grants is not None:
            nvc = self.num_vcs
            grants = []
            if conflict == 0:
                for p, v, o in fast_grants:
                    nx = v + 1
                    in_arbs[p]._next = nx if nx < nvc else 0
                    nx = p + 1
                    out_arbs[o]._next = nx if nx < n_in else 0
                    grants.append((p, v))
            else:
                # Stage 1 single-requester wins; group stage 2 by output
                # exactly as _allocate_fast would (first-bid order).
                by_out = [None] * 5
                out_order = []
                for p, v, o in fast_grants:
                    nx = v + 1
                    in_arbs[p]._next = nx if nx < nvc else 0
                    pr = port_bids[p][0][2]
                    group = by_out[o]
                    if group is None:
                        by_out[o] = [(p, v, pr)]
                        out_order.append(o)
                    else:
                        group.append((p, v, pr))
                for o in out_order:
                    group = by_out[o]
                    arb = out_arbs[o]
                    if len(group) == 1:
                        p, v, _pr = group[0]
                        nx = p + 1
                        arb._next = nx if nx < n_in else 0
                        grants.append((p, v))
                        continue
                    vec = [None] * n_in
                    in_v = [0] * n_in
                    for p, v, pr in group:
                        cur = vec[p]
                        if cur is None or pr > cur:
                            vec[p] = pr
                            in_v[p] = v
                    nxt = arb._next
                    best_p = -1
                    best_prio = -1
                    for off in range(n_in):
                        idx = nxt + off
                        if idx >= n_in:
                            idx -= n_in
                        prv = vec[idx]
                        if prv is not None and prv > best_prio:
                            best_prio = prv
                            best_p = idx
                    nx = best_p + 1
                    arb._next = nx if nx < n_in else 0
                    grants.append((best_p, in_v[best_p]))
        else:
            grants = self._allocate_fast(bid_ports, port_bids)

        # -- switch traversal (matches _traverse) --------------------------
        moved = 0
        injected = 0
        idle_state = VCState.IDLE
        ni = self.ni
        credit_out = self.credit_out
        outs = self.output_ports
        for in_p, v in grants:
            port = ports[in_p]
            vcobj = port.vcs[v]
            out_port = vcobj.out_port
            out_vc = vcobj.out_vc
            out = outs[out_port]
            fifo = vcobj.fifo
            flit = fifo[0] if fifo else None
            if flit is None or out is None or out_vc is None:
                raise RuntimeError("switch grant for an empty VC")
            flit.out_port = out_port
            flit.out_vc = out_vc
            # Inlined VirtualChannel.pop (same transitions, raises).
            fifo.popleft()
            if flit.is_tail:
                vcobj.out_port = None
                vcobj.out_vc = None
                vcobj.candidates = None
                vcobj.escape = None
                vcobj.state = idle_state
            if fifo:
                front = fifo[0]
                vcobj.wait_since = now
                if front.is_head:
                    if (
                        vcobj.state is not active_state
                        or vcobj.out_port is None
                    ):
                        vcobj.state = routing_state
                else:
                    if vcobj.out_port is None:
                        raise RuntimeError(
                            "body flit at VC front without a route"
                        )
                    vcobj.state = active_state
            else:
                vcobj.wait_since = None
            port.occ -= 1
            self._occ -= 1
            credits = out.credits
            if credits is not None:
                counts = credits.counts
                if counts[out_vc] <= 0:
                    raise RuntimeError(f"credit underflow on vc {out_vc}")
                counts[out_vc] -= 1
                credits.total -= 1
            # Inlined OutputPort.record_send + Link.send.
            writer = out.writer
            if writer[out_vc] != flit.packet.pid:
                raise RuntimeError(
                    "flit sent into a VC claimed by another packet"
                )
            wl = out.writer_left
            wl[out_vc] -= 1
            if wl[out_vc] == 0:
                writer[out_vc] = None
            lk = out.link
            lk._pipe.append((now + lk.latency, flit))
            lk.flits_carried += 1
            lk.busy_cycles += 1
            if port.is_injection:
                if ni is not None:
                    ni.on_credit(port.port_id, v)
                self.flits_injected += 1
                injected += 1
            else:
                ch = credit_out[in_p]
                if ch is not None:
                    ch._in_flight.append((now + ch.latency, v))
            moved += 1
        if injected > 1:
            self.speedup_extra_flits += injected - 1
        self.flits_switched += moved
        return moved

    def _allocate_fast(self, bid_ports, port_bids):
        """Exact flat-tuple transliteration of :meth:`SwitchAllocator.allocate`.

        ``port_bids[p]`` holds that input's bids as ``(vc, out_port, prio)``
        tuples in VC-scan order — the same per-input order the reference
        pipeline feeds the allocator (inputs are resolved independently, so
        cross-input order is free).  Arbiter pointers are read and written
        through the same :class:`RoundRobinArbiter` instances, so switching
        pipelines mid-run keeps arbitration history.  Returns winning
        ``(in_port, vc)`` pairs.
        """
        alloc = self.allocator
        in_arbs = alloc._input_arbiters
        out_arbs = alloc._output_arbiters
        speedups = alloc.speedups
        nvc = self.num_vcs
        n_in = self.num_inputs

        # -- stage 1: input selection (per input, independent) -------------
        stage1 = []
        for p in bid_ports:
            blist = port_bids[p]
            arb = in_arbs[p]
            if len(blist) == 1:
                # Single requester always wins its first round; any later
                # budget rounds see an empty request vector and leave the
                # pointer alone.
                v, o, pr = blist[0]
                nx = v + 1
                arb._next = nx if nx < nvc else 0
                stage1.append((p, v, o, pr))
                continue
            budget = speedups.get(p, 1)
            chosen_mask = 0
            remaining = blist
            for _ in range(budget):
                vec = [None] * nvc
                vc_bid = [None] * nvc
                any_req = False
                for t in remaining:
                    if (chosen_mask >> t[1]) & 1:
                        continue
                    v = t[0]
                    cur = vec[v]
                    if cur is None or t[2] > cur:
                        vec[v] = t[2]
                        vc_bid[v] = t
                        any_req = True
                if not any_req:
                    break
                nxt = arb._next
                best_v = -1
                best_prio = -1
                for off in range(nvc):
                    idx = nxt + off
                    if idx >= nvc:
                        idx -= nvc
                    prv = vec[idx]
                    if prv is not None and prv > best_prio:
                        best_prio = prv
                        best_v = idx
                nx = best_v + 1
                arb._next = nx if nx < nvc else 0
                t = vc_bid[best_v]
                stage1.append((p, t[0], t[1], t[2]))
                chosen_mask |= 1 << t[1]
                remaining = [t2 for t2 in remaining if t2[0] != best_v]

        # -- stage 2: output arbitration (per output, independent) ---------
        by_out = [None] * 5
        out_order = []
        for t in stage1:
            o = t[2]
            group = by_out[o]
            if group is None:
                by_out[o] = [t]
                out_order.append(o)
            else:
                group.append(t)
        grants = []
        for o in out_order:
            group = by_out[o]
            arb = out_arbs[o]
            if len(group) == 1:
                t = group[0]
                p = t[0]
                nx = p + 1
                arb._next = nx if nx < n_in else 0
                grants.append((p, t[1]))
                continue
            vec = [None] * n_in
            in_bid = [None] * n_in
            for t in group:
                p = t[0]
                cur = vec[p]
                if cur is None or t[3] > cur:
                    vec[p] = t[3]
                    in_bid[p] = t
            nxt = arb._next
            best_p = -1
            best_prio = -1
            for off in range(n_in):
                idx = nxt + off
                if idx >= n_in:
                    idx -= n_in
                prv = vec[idx]
                if prv is not None and prv > best_prio:
                    best_prio = prv
                    best_p = idx
            nx = best_p + 1
            arb._next = nx if nx < n_in else 0
            t = in_bid[best_p]
            grants.append((best_p, t[1]))
        return grants

    def _try_allocate_fast(self, vc: VirtualChannel, pkt, vc_rule: int) -> bool:
        """Fast twin of :meth:`_try_allocate` (same outcomes, fewer calls)."""
        candidates = vc.candidates or []
        outs = self.output_ports
        routing = self.routing
        if routing.adaptive and len(candidates) > 1:
            if len(candidates) == 2:
                a, b = candidates
                oa = outs[a]
                ob = outs[b]
                ca = oa.credits if oa is not None else None
                cb = ob.credits if ob is not None else None
                fa = -1 if oa is None else (1 << 20) if ca is None else ca.total
                fb = -1 if ob is None else (1 << 20) if cb is None else cb.total
                # sorted() is stable: reorder only on a strict win.
                if fb > fa:
                    candidates = (b, a)
            else:
                candidates = sorted(
                    candidates,
                    key=lambda p: -(outs[p].free_credit_total()
                                    if outs[p] is not None else -1),
                )
        escape = vc.escape if vc.escape is not None else LOCAL
        size = pkt.size
        for out_port in candidates:
            out = outs[out_port]
            if out is None:
                continue
            writer = out.writer
            if out_port == LOCAL:
                # Ejection: claim any free writer slot (infinite credits).
                for dvc in range(self.num_vcs):
                    if writer[dvc] is None:
                        self._commit_allocation(vc, out, out_port, dvc, pkt)
                        return True
                continue
            credits = out.credits
            if credits is None:
                counts = None
            else:
                if credits.total < size:
                    # counts[dvc] <= total for every dvc, so the whole
                    # packet cannot fit anywhere on this output.
                    continue
                counts = credits.counts
            for dvc in self._vc_order:
                if vc_rule == 1:
                    if dvc == 0 and out_port != escape:
                        continue
                elif vc_rule == 2 and not routing.vc_allowed(
                    dvc, out_port, escape
                ):
                    continue
                if writer[dvc] is not None:
                    continue
                if counts is not None and counts[dvc] < size:
                    continue
                self._commit_allocation(vc, out, out_port, dvc, pkt)
                return True
        return False

    # The network installs this: maps a destination node id to mesh coords.
    _dest_coords = None  # type: ignore[assignment]

    def set_dest_coords_fn(self, fn) -> None:
        self._dest_coords = fn

    def __repr__(self) -> str:  # pragma: no cover
        return f"Router(id={self.router_id}, at={self.coords})"
