"""Route computation: dimension-ordered XY and minimal adaptive routing.

Port numbering convention (shared with :mod:`repro.noc.router`)::

    0 = North (+y), 1 = East (+x), 2 = South (-y), 3 = West (-x), 4 = Local

Minimal adaptive routing may use either productive dimension.  Deadlock
freedom follows Duato's protocol: VC 0 of every port is an *escape* channel
restricted to dimension-ordered (XY) hops, while the remaining VCs are fully
adaptive.  This mirrors the paper's setup of adaptive routing enabled by WPF
[Ma HPCA'12] with non-atomic buffer allocation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

NORTH, EAST, SOUTH, WEST, LOCAL = 0, 1, 2, 3, 4
DIRECTION_NAMES = {NORTH: "N", EAST: "E", SOUTH: "S", WEST: "W", LOCAL: "L"}

# Offset of each direction in (dx, dy).
_DIR_DELTA = {NORTH: (0, 1), EAST: (1, 0), SOUTH: (0, -1), WEST: (-1, 0)}


def productive_directions(cur: Tuple[int, int], dest: Tuple[int, int]) -> List[int]:
    """All minimal (productive) mesh directions from ``cur`` toward ``dest``."""
    cx, cy = cur
    dx, dy = dest
    dirs: List[int] = []
    if dx > cx:
        dirs.append(EAST)
    elif dx < cx:
        dirs.append(WEST)
    if dy > cy:
        dirs.append(NORTH)
    elif dy < cy:
        dirs.append(SOUTH)
    return dirs


def xy_direction(cur: Tuple[int, int], dest: Tuple[int, int]) -> int:
    """The single dimension-ordered (X first, then Y) next hop."""
    cx, cy = cur
    dx, dy = dest
    if dx > cx:
        return EAST
    if dx < cx:
        return WEST
    if dy > cy:
        return NORTH
    if dy < cy:
        return SOUTH
    return LOCAL


class RoutingAlgorithm:
    """Interface for route computation.

    ``candidates`` returns the admissible output ports in preference order;
    ``escape_port`` returns the port that the escape VC (VC 0) is allowed to
    use; ``adaptive`` tells the router whether to re-evaluate candidates by
    downstream congestion.
    """

    name = "abstract"
    adaptive = False

    def candidates(self, cur: Tuple[int, int], dest: Tuple[int, int]) -> List[int]:
        raise NotImplementedError

    def escape_port(self, cur: Tuple[int, int], dest: Tuple[int, int]) -> int:
        return xy_direction(cur, dest)

    def vc_allowed(self, vc: int, port: int, escape: int) -> bool:
        """May a packet be placed in downstream ``vc`` when leaving via ``port``?"""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class XYRouting(RoutingAlgorithm):
    """Deterministic dimension-ordered routing: X fully, then Y."""

    name = "xy"
    adaptive = False

    def candidates(self, cur: Tuple[int, int], dest: Tuple[int, int]) -> List[int]:
        if cur == dest:
            return [LOCAL]
        return [xy_direction(cur, dest)]

    def vc_allowed(self, vc: int, port: int, escape: int) -> bool:
        # XY is deadlock-free on all VCs.
        return True


class MinimalAdaptiveRouting(RoutingAlgorithm):
    """Minimal adaptive routing with an XY escape channel on VC 0."""

    name = "adaptive"
    adaptive = True

    def candidates(self, cur: Tuple[int, int], dest: Tuple[int, int]) -> List[int]:
        if cur == dest:
            return [LOCAL]
        dirs = productive_directions(cur, dest)
        # Keep XY's choice first as the default preference; the router may
        # reorder by downstream credits.
        esc = xy_direction(cur, dest)
        if esc in dirs:
            dirs.remove(esc)
            dirs.insert(0, esc)
        return dirs

    def vc_allowed(self, vc: int, port: int, escape: int) -> bool:
        if vc == 0:
            # Escape VC: only the dimension-ordered hop is legal.
            return port == escape
        return True


class FaultAwareRouting(RoutingAlgorithm):
    """Detour wrapper used by :mod:`repro.faults`.

    Holds a *base* algorithm plus a fault-state object exposing ``active``,
    ``link_ok(router_id, direction)`` and ``distance(router_id, dest_id)``
    (hop distance over the live-link graph, ``inf`` when unreachable).
    While ``state.active`` is False every call delegates verbatim to the
    base algorithm, so a network with an empty fault plan routes — and
    simulates — identically to one without the wrapper.

    With faults active, candidates are the live outgoing directions whose
    neighbour lies strictly closer to the destination on the live graph.
    Strict descent makes every individual route loop-free; the escape VC
    (VC 0) is additionally pinned to the single first candidate so the
    deadlock-avoidance structure of the base scheme is preserved in spirit
    (campaigns double-check with the deadlock detector and
    :class:`~repro.noc.validation.InvariantChecker`).
    """

    def __init__(self, base: RoutingAlgorithm, topology, state) -> None:
        self.base = base
        self.topology = topology
        self.state = state
        self.name = f"fault+{base.name}"

    @property
    def adaptive(self) -> bool:  # type: ignore[override]
        # Detour candidates carry no inherent preference, so let the router
        # re-rank them by downstream credits while any fault is live.
        return self.base.adaptive or self.state.active

    def candidates(self, cur: Tuple[int, int], dest: Tuple[int, int]) -> List[int]:
        state = self.state
        if not state.active:
            return self.base.candidates(cur, dest)
        if cur == dest:
            return [LOCAL]
        topo = self.topology
        cur_id = topo.router_at(*cur)
        dest_id = topo.router_at(*dest)
        cur_d = state.distance(cur_id, dest_id)
        out: List[int] = []
        for direction, nbr in topo.neighbors(cur_id).items():
            if not state.link_ok(cur_id, direction):
                continue
            if state.distance(nbr, dest_id) < cur_d:
                out.append(direction)
        if not out:
            # Unreachable destination (normally written off at the source)
            # or a packet stranded by a fresh cut: keep the base choice so
            # the wormhole is not left route-less; the deadlock detector
            # owns the case where it can never drain.
            return self.base.candidates(cur, dest)
        # Keep the dimension-ordered hop first when it survived the cut,
        # matching MinimalAdaptiveRouting's default preference.
        esc = xy_direction(cur, dest)
        if esc in out:
            out.remove(esc)
            out.insert(0, esc)
        return out

    def escape_port(self, cur: Tuple[int, int], dest: Tuple[int, int]) -> int:
        if not self.state.active:
            return self.base.escape_port(cur, dest)
        # Deterministic single direction per (cur, dest) on the live graph.
        return self.candidates(cur, dest)[0]

    def vc_allowed(self, vc: int, port: int, escape: int) -> bool:
        if not self.state.active:
            return self.base.vc_allowed(vc, port, escape)
        if vc == 0:
            return port == escape
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"FaultAwareRouting({self.base!r})"


#: Canonical algorithm names accepted by :func:`make_routing` (aliases for
#: each are listed in the factory; introspection code iterates this).
ROUTING_NAMES = ("xy", "adaptive")


def make_routing(name: str) -> RoutingAlgorithm:
    """Factory used by configuration code (``"xy"`` or ``"adaptive"``)."""
    name = name.lower()
    if name in ("xy", "dor"):
        return XYRouting()
    if name in ("adaptive", "minimal-adaptive", "min-adaptive", "ada"):
        return MinimalAdaptiveRouting()
    raise ValueError(
        f"unknown routing algorithm: {name!r}; canonical names: "
        f"{', '.join(ROUTING_NAMES)}"
    )


def hop_count(cur: Tuple[int, int], dest: Tuple[int, int]) -> int:
    """Minimal hop distance between two mesh coordinates."""
    return abs(cur[0] - dest[0]) + abs(cur[1] - dest[1])


def opposite(direction: int) -> int:
    """The port on the neighbouring router that a given direction lands on."""
    return {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}[direction]


def direction_names(ports: Sequence[int]) -> str:  # pragma: no cover - debug
    return "".join(DIRECTION_NAMES.get(p, "?") for p in ports)
