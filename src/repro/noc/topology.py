"""Mesh topology and memory-controller placement.

The paper's main configuration is a 6x6 mesh with 28 compute-cluster (CC)
nodes and 8 memory-controller (MC) nodes placed in a *diamond* pattern
[Abts ISCA'09], which spreads MCs away from the edges/corners to balance
link load.  4x4 and 8x8 meshes are used in the scalability study.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.noc.routing import EAST, NORTH, SOUTH, WEST, opposite


class MeshTopology:
    """A ``width`` x ``height`` 2D mesh.

    Routers are identified by an integer id ``r = y * width + x``.  Each
    router has one attached node with the same id (node ids and router ids
    coincide in this simulator).
    """

    def __init__(self, width: int, height: int) -> None:
        if width < 2 or height < 2:
            raise ValueError("mesh must be at least 2x2")
        self.width = width
        self.height = height
        self.num_routers = width * height
        # neighbor[r][dir] = neighbouring router id, or None at mesh edges.
        self._neighbors: List[Dict[int, int]] = []
        for r in range(self.num_routers):
            x, y = self.coords(r)
            nb: Dict[int, int] = {}
            if y + 1 < height:
                nb[NORTH] = self.router_at(x, y + 1)
            if x + 1 < width:
                nb[EAST] = self.router_at(x + 1, y)
            if y > 0:
                nb[SOUTH] = self.router_at(x, y - 1)
            if x > 0:
                nb[WEST] = self.router_at(x - 1, y)
            self._neighbors.append(nb)

    # ------------------------------------------------------------------
    def coords(self, router: int) -> Tuple[int, int]:
        return router % self.width, router // self.width

    def router_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def neighbors(self, router: int) -> Dict[int, int]:
        """Map of direction -> neighbouring router id (edges omitted)."""
        return self._neighbors[router]

    def direction_to(self, src: int, dst: int) -> Optional[int]:
        """Direction of the ``src -> dst`` mesh link, or None if not adjacent."""
        for direction, neighbor in self._neighbors[src].items():
            if neighbor == dst:
                return direction
        return None

    def degree(self, router: int) -> int:
        """Number of mesh links at this router (2 corner, 3 edge, 4 inner)."""
        return len(self._neighbors[router])

    def links(self) -> List[Tuple[int, int, int]]:
        """All unidirectional links as (src_router, direction, dst_router)."""
        out = []
        for r in range(self.num_routers):
            for d, n in self._neighbors[r].items():
                out.append((r, d, n))
        return out

    def bisection_links(self) -> int:
        """Unidirectional links crossing the vertical bisection of the mesh."""
        # Links between column width//2 - 1 and width//2, both directions.
        return 2 * self.height

    def reverse_port(self, direction: int) -> int:
        return opposite(direction)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MeshTopology({self.width}x{self.height})"


def diamond_mc_placement(width: int, height: int, num_mcs: int) -> List[int]:
    """Diamond-ish MC placement [Abts ISCA'09].

    MCs are spread over interior diagonals so that no two MCs share a row or
    column where avoidable, and none sit in a corner.  For the paper's 6x6 /
    8 MC case this yields the classic diamond pattern.  The function is
    deterministic and works for any mesh at least 3x3.
    """
    if num_mcs <= 0:
        raise ValueError("num_mcs must be positive")
    if num_mcs > width * height // 2:
        raise ValueError("too many MCs for this mesh")

    mesh = MeshTopology(width, height)
    # Diamond band: interleave the two diagonals adjacent to the main one
    # (x = y + 1 and y = x + 1).  These cells avoid all corners, spread over
    # rows and columns (at most two MCs per line), and sit away from the
    # congested mesh centre edges — the qualitative properties of the Abts
    # placement that make it a competitive baseline.
    lower = [(y + 1, y) for y in range(min(width - 1, height))]
    upper = [(x, x + 1) for x in range(min(width, height - 1))]
    band: List[Tuple[int, int]] = []
    for a, b in zip(lower, upper):
        band.append(a)
        band.append(b)
    band.extend(lower[len(upper):])
    band.extend(upper[len(lower):])
    # If the band is too small (very elongated meshes), extend with the
    # next diagonals out.
    offset = 2
    while len(band) < num_mcs:
        extra = [
            (y + offset, y) for y in range(height) if y + offset < width
        ] + [(x, x + offset) for x in range(width) if x + offset < height]
        if not extra:
            raise ValueError("cannot place that many MCs diagonally")
        band.extend(c for c in extra if c not in band)
        offset += 1

    chosen = sorted(mesh.router_at(x, y) for x, y in band[:num_mcs])
    return chosen


def edge_mc_placement(width: int, height: int, num_mcs: int) -> List[int]:
    """Top/bottom-edge MC placement (the GPGPU-Sim default layout).

    MCs are spread evenly along the top and bottom rows — the configuration
    the diamond placement of [Abts ISCA'09] improves on by reducing link
    contention around the controllers.
    """
    if num_mcs <= 0:
        raise ValueError("num_mcs must be positive")
    if num_mcs > 2 * width:
        raise ValueError("too many MCs for edge placement")
    mesh = MeshTopology(width, height)
    top = num_mcs // 2
    bottom = num_mcs - top
    chosen: List[int] = []

    def spread(count: int, y: int) -> None:
        if count == 0:
            return
        step = width / count
        for i in range(count):
            x = min(width - 1, int((i + 0.5) * step))
            chosen.append(mesh.router_at(x, y))

    spread(bottom, 0)
    spread(top, height - 1)
    return sorted(set(chosen))


def column_mc_placement(width: int, height: int, num_mcs: int) -> List[int]:
    """Center-column MC placement (all MCs share one or two middle columns).

    A deliberately poor layout used as a contrast point in the placement
    study: it concentrates both request ejection and reply injection on a
    few columns.
    """
    if num_mcs <= 0:
        raise ValueError("num_mcs must be positive")
    if num_mcs > 2 * height:
        raise ValueError("too many MCs for column placement")
    mesh = MeshTopology(width, height)
    cols = [width // 2] if num_mcs <= height else [width // 2 - 1, width // 2]
    chosen: List[int] = []
    i = 0
    for y in range(height):
        for x in cols:
            if i < num_mcs:
                chosen.append(mesh.router_at(x, y))
                i += 1
    return sorted(chosen)


PLACEMENTS = {
    "diamond": diamond_mc_placement,
    "edge": edge_mc_placement,
    "column": column_mc_placement,
}


def default_placement(
    width: int, height: int, num_mcs: int, style: str = "diamond"
) -> Tuple[List[int], List[int]]:
    """Return (mc_routers, cc_routers) for a mesh using the given placement."""
    try:
        place = PLACEMENTS[style]
    except KeyError:
        raise ValueError(
            f"unknown placement {style!r}; options: {sorted(PLACEMENTS)}"
        ) from None
    mcs = place(width, height, num_mcs)
    mc_set = set(mcs)
    ccs = [r for r in range(width * height) if r not in mc_set]
    return mcs, ccs
