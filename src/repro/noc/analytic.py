"""Analytic performance models for validation.

Closed-form predictions the cycle-level simulator must agree with in the
regimes where the theory is exact (zero load) or well-approximated (light
Poisson load).  The test suite compares both — a strong guard against
silent timing bugs: a mis-counted cycle anywhere in the NI/router path
shifts the zero-load latency, and a flow-control bug shows up as excess
queueing versus M/D/1.

Models
------
* ``zero_load_latency`` — NI link + per-hop cost + ejection + serialization.
* ``md1_wait`` — mean M/D/1 queueing delay (Pollaczek–Khinchine with
  deterministic service): W = rho * S / (2 (1 - rho)).
* ``injection_queue_wait`` — the wait a reply packet sees at a baseline
  (1 flit/cycle) NI injection queue under Poisson packet arrivals, modeled
  as M/D/1 with service time = packet size.
* ``saturation_throughput`` — the baseline injection ceiling the paper's
  Sec. 3 analysis implies: one narrow link, ``1/size`` packets/cycle.
"""

from __future__ import annotations


def zero_load_latency(hops: int, size_flits: int, hop_latency: int = 1) -> int:
    """End-to-end packet latency in an empty network.

    1 cycle NI link + ``hop_latency`` per hop + 1 cycle ejection link +
    serialization of the remaining flits (matches
    :meth:`repro.noc.network.Network.zero_load_latency`).
    """
    if hops < 0 or size_flits < 1 or hop_latency < 1:
        raise ValueError("invalid parameters")
    return 1 + hops * hop_latency + 1 + (size_flits - 1)


def md1_wait(arrival_rate: float, service_time: float) -> float:
    """Mean queueing delay (excluding service) of an M/D/1 queue."""
    if arrival_rate < 0 or service_time <= 0:
        raise ValueError("invalid parameters")
    rho = arrival_rate * service_time
    if rho >= 1.0:
        return float("inf")
    return rho * service_time / (2.0 * (1.0 - rho))


def injection_queue_wait(
    packet_rate: float, packet_size_flits: int, drain_flits_per_cycle: float = 1.0
) -> float:
    """Mean wait of a reply packet at a single-queue NI injection point.

    The queue drains ``drain_flits_per_cycle``; a packet's service time is
    ``size / drain``.  Under Poisson packet arrivals this is M/D/1.
    """
    if drain_flits_per_cycle <= 0:
        raise ValueError("drain rate must be positive")
    service = packet_size_flits / drain_flits_per_cycle
    return md1_wait(packet_rate, service)


def saturation_throughput(
    packet_size_flits: int, drain_flits_per_cycle: float = 1.0
) -> float:
    """Max packets/cycle through one injection link (Sec. 3's ceiling)."""
    if packet_size_flits < 1:
        raise ValueError("packet size must be >= 1")
    return drain_flits_per_cycle / packet_size_flits


def utilization(packet_rate: float, packet_size_flits: int,
                drain_flits_per_cycle: float = 1.0) -> float:
    """Offered load as a fraction of the injection link's capacity."""
    return packet_rate * packet_size_flits / drain_flits_per_cycle


def bandwidth_analysis(
    mem_clock_ghz: float = 1.75,
    mem_pins: int = 32,
    data_rate: int = 4,
    num_mcs: int = 8,
    link_width_bits: int = 128,
    noc_clock_ghz: float = 1.0,
    bisection_links: int = 12,
    mc_links: int = 3,
    bisection_rule: float = 0.8,
) -> dict:
    """The paper's Sec. 3 bandwidth sanity check, as arithmetic.

    Shows that 128-bit links are *sufficient* for the memory traffic —
    per-MC outgoing NoC bandwidth exceeds GDDR5 incoming bandwidth, and
    the mesh bisection exceeds 80% of aggregate MC bandwidth — so the
    congestion must come from the injection process, not from undersized
    links.  Defaults reproduce the paper's numbers exactly:

    >>> r = bandwidth_analysis()
    >>> r["mc_in_gbps"], r["edge_mc_out_gbps"], r["bisection_gbps"]
    (28.0, 48.0, 192.0)
    """
    mc_in = mem_clock_ghz * mem_pins * data_rate / 8  # GB/s into one MC
    link_out = link_width_bits * noc_clock_ghz / 8    # GB/s per NoC link
    edge_out = mc_links * link_out
    aggregate_in = mc_in * num_mcs
    needed_bisection = aggregate_in * bisection_rule
    bisection = bisection_links * link_out
    return {
        "mc_in_gbps": mc_in,
        "link_out_gbps": link_out,
        "edge_mc_out_gbps": edge_out,
        "aggregate_mc_in_gbps": aggregate_in,
        "needed_bisection_gbps": needed_bisection,
        "bisection_gbps": bisection,
        "links_sufficient": edge_out > mc_in and bisection > needed_bisection,
    }
