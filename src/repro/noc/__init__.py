"""Cycle-level network-on-chip simulator (BookSim 2.0 substitute).

This subpackage implements a virtual-channel wormhole-switched NoC with
credit-based flow control, separable input-first allocation, XY and minimal
adaptive routing (with WPF-style non-atomic VC reuse), configurable link
widths, and the network-interface / injection-port variants studied in the
ARI paper (enhanced baseline, split-queue ARI NI, MultiPort).

The central entry point is :class:`repro.noc.network.Network`, built from a
:class:`repro.noc.network.NetworkConfig`.
"""

from repro.noc.buffer import InputPort, VirtualChannel
from repro.noc.flit import Flit, Packet, PacketType
from repro.noc.histogram import LatencyHistogram
from repro.noc.kernel import (
    KERNELS,
    ActivityKernel,
    ReferenceKernel,
    SimKernel,
    make_kernel,
    resolve_kernel,
)
from repro.noc.link import Link
from repro.noc.network import Network, NetworkConfig
from repro.noc.ni import BaselineNI, EnhancedNI, MultiPortNI, NIKind, SplitNI, make_ni
from repro.noc.router import Router
from repro.noc.routing import MinimalAdaptiveRouting, RoutingAlgorithm, XYRouting
from repro.noc.stats import NetworkStats
from repro.noc.topology import MeshTopology, diamond_mc_placement
from repro.noc.trace import PacketTracer, TraceEvent

__all__ = [
    "Flit",
    "Packet",
    "PacketType",
    "Link",
    "VirtualChannel",
    "InputPort",
    "RoutingAlgorithm",
    "XYRouting",
    "MinimalAdaptiveRouting",
    "NIKind",
    "BaselineNI",
    "EnhancedNI",
    "SplitNI",
    "MultiPortNI",
    "make_ni",
    "Router",
    "MeshTopology",
    "diamond_mc_placement",
    "Network",
    "NetworkConfig",
    "NetworkStats",
    "SimKernel",
    "ReferenceKernel",
    "ActivityKernel",
    "KERNELS",
    "make_kernel",
    "resolve_kernel",
    "LatencyHistogram",
    "PacketTracer",
    "TraceEvent",
]
