"""Latency histograms and percentile statistics.

The paper reports means; distribution tails are where injection bottlenecks
actually bite (a few packets wait very long behind a full NI queue), so the
analysis tooling also tracks full distributions.  The histogram uses
power-of-two bucket boundaries for O(1) recording with bounded memory, and
reconstructs approximate percentiles by linear interpolation inside the
matched bucket.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class LatencyHistogram:
    """Log-bucketed histogram of non-negative integer samples."""

    def __init__(self, max_exponent: int = 24) -> None:
        if max_exponent < 1:
            raise ValueError("max_exponent must be >= 1")
        # Bucket b covers [2^b, 2^(b+1)); bucket 0 covers {0, 1}.
        self.max_exponent = max_exponent
        self.buckets: List[int] = [0] * (max_exponent + 1)
        self.count = 0
        self.total = 0
        self.min_value = None  # type: int | None
        self.max_value = None  # type: int | None

    @staticmethod
    def _bucket_of(value: int) -> int:
        return max(0, value.bit_length() - 1)

    def record(self, value: int) -> None:
        if value < 0:
            raise ValueError("latency samples must be non-negative")
        b = min(self._bucket_of(value), self.max_exponent)
        self.buckets[b] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def record_many(self, values: Iterable[int]) -> None:
        for v in values:
            self.record(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """Approximate percentile via interpolation inside the bucket.

        An empty histogram has no percentiles — ``None``, not a fake
        0.0 that would poison downstream KPI series.  A single sample
        *is* every percentile, exactly (interpolating inside its bucket
        would invent a value the sample never had).
        """
        if not (0.0 <= p <= 100.0):
            raise ValueError("percentile in [0, 100]")
        if self.count == 0:
            return None
        if self.count == 1:
            return float(self.min_value)
        if p == 0:
            return float(self.min_value)
        target = p / 100.0 * self.count
        seen = 0
        for b, n in enumerate(self.buckets):
            if n == 0:
                continue
            if seen + n >= target:
                lo = 1 << b if b else 0
                hi = (1 << (b + 1)) - 1
                lo = max(lo, self.min_value)
                hi = min(hi, self.max_value)
                frac = (target - seen) / n
                return lo + frac * (hi - lo)
            seen += n
        return float(self.max_value)

    # Named percentile queries — the tail views every latency report uses.
    @property
    def p50(self) -> Optional[float]:
        return self.percentile(50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(95)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(99)

    def summary(self) -> Dict[str, Optional[float]]:
        """Distribution summary; percentile slots are ``None`` when empty."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.percentile(90),
            "p95": self.p95,
            "p99": self.p99,
            "max": float(self.max_value or 0),
        }

    def merge(self, other: "LatencyHistogram") -> None:
        if other.max_exponent != self.max_exponent:
            raise ValueError("histogram geometries differ")
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        for attr in ("min_value", "max_value"):
            ov = getattr(other, attr)
            sv = getattr(self, attr)
            if ov is None:
                continue
            if sv is None:
                setattr(self, attr, ov)
            elif attr == "min_value":
                setattr(self, attr, min(sv, ov))
            else:
                setattr(self, attr, max(sv, ov))

    def ascii_plot(self, width: int = 40) -> str:
        """Render the non-empty buckets as a horizontal bar chart."""
        peak = max(self.buckets) if self.count else 0
        lines = []
        for b, n in enumerate(self.buckets):
            if n == 0:
                continue
            lo = 1 << b if b else 0
            bar = "#" * max(1, round(n / peak * width))
            lines.append(f"{lo:>8d}+ |{bar} {n}")
        return "\n".join(lines) if lines else "(empty)"
