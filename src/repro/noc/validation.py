"""Runtime invariant checking for the NoC simulator.

``InvariantChecker`` audits a :class:`~repro.noc.network.Network` between
cycles and raises :class:`InvariantViolation` with a precise description
when simulator state goes inconsistent.  It exists for development and for
the test suite's failure-injection paths: when a model change breaks flow
control, these checks localize the bug to the first inconsistent cycle
instead of a deadlock thousands of cycles later.

Checked invariants:

* **occupancy** — every router's maintained flit counter equals the sum of
  its VC FIFO lengths;
* **credit conservation** — for every mesh link, the upstream credit view
  plus downstream buffered flits plus in-flight flits/credits equals the
  VC capacity;
* **writer locks** — an output VC's remaining-flit count is consistent
  (never negative, zero iff unlocked);
* **WPF safety** — no downstream VC ever interleaves flits of two packets
  (a head may only follow a tail);
* **conservation** — offered = delivered + in-network + in-NI + in-flight
  flit-accounted packets (checked at quiescence).
"""

from __future__ import annotations

from typing import List, Optional

from repro.noc.network import Network
from repro.noc.routing import opposite


class InvariantViolation(AssertionError):
    """A simulator invariant does not hold."""


class InvariantChecker:
    """Audits one network.

    ``context`` (e.g. ``"scheme=ada-ari seed=3"``) is prefixed into every
    violation message so a failure out of a parallel sweep is reproducible
    from the error text alone.  With ``collect=True`` violations are
    accumulated in :attr:`violations` instead of raised — the mode fault
    campaigns use to keep degrading gracefully while still counting every
    inconsistency.  Install the checker as ``network.auditor`` to audit
    every ``every``-th cycle via :meth:`on_cycle`.
    """

    def __init__(
        self,
        network: Network,
        context: str = "",
        every: int = 1,
        collect: bool = False,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.network = network
        self.context = context
        self.every = every
        self.collect = collect
        self.violations: List[str] = []
        self.audits = 0

    def _fail(self, message: str) -> None:
        if self.context:
            message = f"[{self.context}] {message}"
        if self.collect:
            self.violations.append(message)
            return
        raise InvariantViolation(message)

    def _loc(self, router_id: int) -> str:
        """``r5@(5,0)`` — router id with its mesh coordinates."""
        x, y = self.network.topology.coords(router_id)
        return f"r{router_id}@({x},{y})"

    # -- network.auditor hook ----------------------------------------------
    def on_cycle(self, now: int) -> None:
        if now % self.every == 0:
            self.audit()

    # -- individual checks -------------------------------------------------
    def check_occupancy_counters(self) -> None:
        for router in self.network.routers:
            loc = self._loc(router.router_id)
            for port in router.input_ports:
                if port.occ != port.total_occupancy():
                    per_vc = ", ".join(
                        f"vc{vc.index}={vc.occupancy}" for vc in port.vcs
                    )
                    self._fail(
                        f"router {loc} port {port.port_id}: "
                        f"port counter {port.occ} != {port.total_occupancy()}"
                        f" ({per_vc})"
                    )
            actual = sum(p.total_occupancy() for p in router.input_ports)
            if router.occupancy() != actual:
                self._fail(
                    f"router {loc}: maintained occupancy "
                    f"{router.occupancy()} != actual {actual}"
                )

    def check_credit_conservation(self) -> None:
        topo = self.network.topology
        for src, direction, dst in topo.links():
            up = self.network.routers[src].output_ports[direction]
            if up is None or up.credits is None:
                continue
            down_port = self.network.routers[dst].input_ports[
                opposite(direction)
            ]
            in_flight_flits = up.link.in_flight
            in_flight_credits = up.credit_in.pending if up.credit_in else 0
            for vc in range(self.network.config.num_vcs):
                buffered = down_port.vcs[vc].occupancy
                # Flits in flight on the link may belong to any VC; account
                # them loosely by checking the aggregate bound per VC pair.
                total = up.credits.available(vc) + buffered
                cap = self.network.config.vc_capacity
                link_loc = f"link {self._loc(src)}->{self._loc(dst)}"
                if total > cap + in_flight_credits:
                    self._fail(
                        f"{link_loc} vc{vc}: credits "
                        f"{up.credits.available(vc)} + buffered {buffered} "
                        f"> capacity {cap} (+{in_flight_credits} in-flight)"
                    )
                if up.credits.available(vc) + buffered + in_flight_flits + \
                        in_flight_credits < cap:
                    self._fail(
                        f"{link_loc} vc{vc}: credit leak "
                        f"({up.credits.available(vc)} + {buffered} + "
                        f"{in_flight_flits} + {in_flight_credits} < {cap})"
                    )

    def check_writer_locks(self) -> None:
        for router in self.network.routers:
            loc = self._loc(router.router_id)
            for out in router.output_ports:
                if out is None:
                    continue
                for vc in range(self.network.config.num_vcs):
                    left = out.writer_left[vc]
                    locked = out.writer[vc] is not None
                    if left < 0:
                        self._fail(
                            f"router {loc} out {out.port_id} "
                            f"vc{vc}: negative writer_left {left}"
                        )
                    if locked and left == 0:
                        self._fail(
                            f"router {loc} out {out.port_id} "
                            f"vc{vc}: locked with zero flits left"
                        )
                    if not locked and left != 0:
                        self._fail(
                            f"router {loc} out {out.port_id} "
                            f"vc{vc}: unlocked with {left} flits left"
                        )

    def check_no_interleaving(self) -> None:
        for router in self.network.routers:
            loc = self._loc(router.router_id)
            for port in router.input_ports:
                for vc in port.vcs:
                    current: Optional[int] = None
                    for flit in vc.fifo:
                        if flit.is_head:
                            if current is not None:
                                self._fail(
                                    f"router {loc} port "
                                    f"{port.port_id} vc{vc.index}: head of "
                                    f"pid {flit.packet.pid} inside pid "
                                    f"{current}"
                                )
                            current = flit.packet.pid
                        else:
                            if current is not None and \
                                    flit.packet.pid != current:
                                self._fail(
                                    f"router {loc} port "
                                    f"{port.port_id} vc{vc.index}: flit of "
                                    f"pid {flit.packet.pid} interleaved "
                                    f"into pid {current}"
                                )
                            current = flit.packet.pid
                        if flit.is_tail:
                            current = None

    def check_quiescent_conservation(self) -> None:
        """At quiescence (no in-flight packets), all counters must agree."""
        stats = self.network.stats
        if stats.in_flight != 0:
            self._fail(
                f"quiescence check with {stats.in_flight} packets in flight"
            )
        holders = [
            f"{self._loc(r.router_id)}:{r.occupancy()}"
            for r in self.network.routers
            if r.occupancy()
        ]
        if holders:
            buffered = sum(r.occupancy() for r in self.network.routers)
            self._fail(
                f"quiescent network still buffers {buffered} flits "
                f"(at {', '.join(holders)})"
            )
        ni_holders = [
            f"{self._loc(node)}:{ni.queued_flits()}"
            for node, ni in enumerate(self.network.nis)
            if ni.queued_flits()
        ]
        if ni_holders:
            queued = sum(ni.queued_flits() for ni in self.network.nis)
            self._fail(
                f"quiescent network still queues {queued} NI flits "
                f"(at {', '.join(ni_holders)})"
            )

    # -- aggregate ----------------------------------------------------------
    def audit(self, quiescent: bool = False) -> None:
        """Run all applicable checks once."""
        self.audits += 1
        self.check_occupancy_counters()
        self.check_credit_conservation()
        self.check_writer_locks()
        self.check_no_interleaving()
        if quiescent:
            self.check_quiescent_conservation()

    def run_audited(self, cycles: int, every: int = 1) -> None:
        """Step the network, auditing every ``every`` cycles."""
        for i in range(cycles):
            self.network.step()
            if i % every == 0:
                self.audit()
