"""ASCII visualization of mesh state.

Renders a :class:`~repro.noc.network.Network` as a text diagram: per-router
buffer occupancy heat, per-link utilization heat, and NI injection-queue
fill.  Useful for eyeballing where congestion sits — the paper's "hot
region around memory controllers" is immediately visible.

Example output (6x6 mesh, '.' cold .. '#' hot)::

    reply network @ cycle 1500            links: - | (horizontal/vertical)
    [..]-[..]-[..]-[..]-[..]-[..]
      |    |    |    |    |    |
    [..]-[#3]=[..]-[..]-[..]-[..]     M = MC node, digits = NI queue fill
    ...
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.noc.network import Network
from repro.noc.routing import EAST, NORTH


_HEAT = " .:-=+*#%@"


def heat_char(value: float, max_value: float) -> str:
    """Map value/max onto a 10-step heat ramp."""
    if max_value <= 0 or value <= 0:
        return _HEAT[0]
    idx = min(len(_HEAT) - 1, int(value / max_value * (len(_HEAT) - 1) + 0.5))
    return _HEAT[idx]


class MeshRenderer:
    """Renders snapshots of a network's congestion state."""

    def __init__(self, network: Network, mc_nodes: Optional[Iterable[int]] = None):
        self.network = network
        self.mc_nodes = set(mc_nodes or [])

    # -- router occupancy ----------------------------------------------------
    def router_heatmap(self) -> str:
        """Per-router buffered-flit heat, row by row (top row = max y)."""
        net = self.network
        topo = net.topology
        cap = (
            net.config.num_vcs
            * net.config.vc_capacity
            * net.routers[0].num_inputs
        )
        lines: List[str] = []
        for y in reversed(range(topo.height)):
            cells = []
            for x in range(topo.width):
                r = topo.router_at(x, y)
                occ = net.routers[r].occupancy()
                mark = "M" if r in self.mc_nodes else " "
                cells.append(f"[{mark}{heat_char(occ, cap)}]")
            lines.append(" ".join(cells))
        return "\n".join(lines)

    # -- link utilization -----------------------------------------------------
    def link_heatmap(self) -> str:
        """Inter-router link utilization; E/W between cells, N/S below."""
        net = self.network
        topo = net.topology
        cycles = max(1, net.now)
        util = {}
        for r in range(topo.num_routers):
            for d, out in enumerate(net.routers[r].output_ports[:4]):
                if out is not None and out.link is not None:
                    util[(r, d)] = out.link.utilization(cycles)
        peak = max(util.values(), default=0.0)
        lines: List[str] = []
        for y in reversed(range(topo.height)):
            row = []
            for x in range(topo.width):
                r = topo.router_at(x, y)
                mark = "M" if r in self.mc_nodes else "o"
                row.append(mark)
                if x + 1 < topo.width:
                    h = max(
                        util.get((r, EAST), 0.0),
                        util.get((topo.router_at(x + 1, y), 3), 0.0),
                    )
                    row.append(heat_char(h, peak) * 3)
            lines.append("".join(row))
            if y > 0:
                vrow = []
                for x in range(topo.width):
                    r = topo.router_at(x, y)
                    below = topo.router_at(x, y - 1)
                    v = max(
                        util.get((r, 2), 0.0),       # SOUTH out of r
                        util.get((below, NORTH), 0.0),
                    )
                    vrow.append(heat_char(v, peak))
                    if x + 1 < topo.width:
                        vrow.append("   ")
                lines.append("".join(vrow))
        return "\n".join(lines)

    # -- NI queues ------------------------------------------------------------
    def ni_queue_bars(self, nodes: Optional[Sequence[int]] = None) -> str:
        """Injection-queue fill bars for the given nodes (default: MCs)."""
        net = self.network
        nodes = list(nodes) if nodes is not None else sorted(self.mc_nodes)
        if not nodes:
            nodes = list(range(min(8, len(net.nis))))
        cap = net.config.ni_queue_flits
        lines = []
        for n in nodes:
            occ = net.nis[n].queued_flits()
            bar = "#" * round(occ / cap * 20) if cap else ""
            lines.append(f"node {n:>3}: |{bar:<20}| {occ}/{cap} flits")
        return "\n".join(lines)

    def snapshot(self) -> str:
        """Full three-panel snapshot."""
        return "\n".join(
            [
                f"=== network @ cycle {self.network.now} ===",
                "router occupancy ('M' = MC):",
                self.router_heatmap(),
                "",
                "link utilization:",
                self.link_heatmap(),
                "",
                "NI injection queues:",
                self.ni_queue_bars(),
            ]
        )
