"""DA2mesh-style direct all-to-all reply overlay ([Kim ICCD'12], Fig. 16).

DA2mesh provides cost-effective GPU NoC bandwidth by replacing the shared
reply mesh with *direct*, dedicated, narrow channels from each MC to every
CC, clocked faster than the mesh.  Replies never contend inside a network —
but they still funnel through the MC's NI injection structure, which is
exactly the bottleneck DA2mesh does not address and ARI does (the paper
shows ARI adds a further ~16.4% on top of DA2mesh).

The model: each MC owns ``num_lanes`` transmit lanes.  A lane sends one
packet at a time directly to its destination; a packet of ``size`` (mesh)
flits occupies the lane for ``ceil(size * serialization / clock_mult)``
cycles and is delivered a propagation delay later.  The feed side is either

* ``"single"`` — one injection queue, one read port (1 mesh-flit/cycle),
  like the enhanced baseline; or
* ``"split"`` — ARI's split queues, one wired per lane, each read port
  feeding its lane independently.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.noc.flit import Packet
from repro.noc.stats import NetworkStats


class _Lane:
    __slots__ = ("busy_until", "packet")

    def __init__(self) -> None:
        self.busy_until = 0
        self.packet: Optional[Packet] = None


class DA2MeshReplyNetwork:
    """Drop-in reply 'network' with the Network offer/step API subset."""

    def __init__(
        self,
        mc_nodes: Sequence[int],
        num_nodes: int,
        num_lanes: int = 4,
        serialization: int = 4,     # narrow lane: mesh-flit takes 4 lane flits
        clock_mult: float = 2.0,    # lanes clocked 2x the mesh
        propagation: int = 4,       # direct-wire fly time in mesh cycles
        ni_mode: str = "single",    # "single" (baseline) or "split" (ARI)
        ni_queue_flits: int = 36,
        num_split_queues: int = 4,
        kernel: Optional[str] = None,
    ) -> None:
        if ni_mode not in ("single", "split"):
            raise ValueError("ni_mode must be 'single' or 'split'")
        # Constructor uniformity with Network: the overlay has no router
        # loop to gate, so the kernel choice is validated and recorded
        # but every backend advances it the same way.
        from repro.noc.kernel import resolve_kernel

        self.kernel_name = resolve_kernel(kernel)
        self.mc_nodes = list(mc_nodes)
        self.num_nodes = num_nodes
        self.num_lanes = num_lanes
        self.serialization = serialization
        self.clock_mult = clock_mult
        self.propagation = propagation
        self.ni_mode = ni_mode
        self.ni_queue_flits = ni_queue_flits
        self.num_split_queues = num_split_queues

        self.now = 0
        self.stats = NetworkStats()
        self.on_delivery: Optional[Callable[[int, Packet, int], None]] = None

        self._lanes: Dict[int, List[_Lane]] = {
            mc: [_Lane() for _ in range(num_lanes)] for mc in self.mc_nodes
        }
        if ni_mode == "single":
            self._queues: Dict[int, List[Deque[Packet]]] = {
                mc: [deque()] for mc in self.mc_nodes
            }
            self._queue_cap = [ni_queue_flits]
        else:
            per_q = max(1, ni_queue_flits // num_split_queues)
            self._queues = {
                mc: [deque() for _ in range(num_split_queues)]
                for mc in self.mc_nodes
            }
            self._queue_cap = [per_q] * num_split_queues
        # Feed progress: mesh flits of the head packet already moved from
        # the queue's read port to its lane this transmission.
        self._feed_progress: Dict[Tuple[int, int], int] = {}
        self._in_flight: List[Tuple[int, Packet]] = []

    # -- helpers ---------------------------------------------------------
    def _queue_flits(self, q: Deque[Packet]) -> int:
        return sum(p.size for p in q)

    def lane_cycles(self, size: int) -> int:
        """Mesh cycles a lane is busy transmitting a ``size``-flit packet."""
        return max(1, math.ceil(size * self.serialization / self.clock_mult))

    # -- Network API -------------------------------------------------------
    def can_accept(self, node: int, packet: Packet) -> bool:
        qs = self._queues[node]
        for qi, q in enumerate(qs):
            if self._queue_flits(q) + packet.size <= self._queue_cap[qi]:
                return True
        return False

    def offer(self, node: int, packet: Packet) -> bool:
        qs = self._queues[node]
        best = None
        best_free = -1
        for qi, q in enumerate(qs):
            free = self._queue_cap[qi] - self._queue_flits(q)
            if free >= packet.size and free > best_free:
                best, best_free = qi, free
        if best is None:
            return False
        qs[best].append(packet)
        packet.created_at = self.now
        self.stats.on_offer()
        return True

    def _feed_lane(self, mc: int, qi: int, q: Deque[Packet]) -> None:
        """Move the head packet from queue ``qi`` toward a free lane.

        The queue read port moves one mesh flit per cycle; once all flits
        of the head packet have crossed, the packet seizes a free lane.
        """
        if not q:
            return
        head = q[0]
        key = (mc, qi)
        progress = self._feed_progress.get(key, 0)
        if progress < head.size:
            self._feed_progress[key] = progress + 1
            return
        # Fully fed: start transmission when a lane frees up.
        for lane in self._lanes[mc]:
            if lane.busy_until <= self.now and lane.packet is None:
                lane.packet = head
                lane.busy_until = self.now + self.lane_cycles(head.size)
                if head.injected_at is None:
                    head.injected_at = self.now
                q.popleft()
                self._feed_progress[key] = 0
                return

    def step(self) -> None:
        now = self.now
        # Complete transmissions.
        for mc in self.mc_nodes:
            for lane in self._lanes[mc]:
                if lane.packet is not None and lane.busy_until <= now:
                    pkt = lane.packet
                    lane.packet = None
                    self._in_flight.append((now + self.propagation, pkt))
        # Feed lanes from queues.
        for mc in self.mc_nodes:
            for qi, q in enumerate(self._queues[mc]):
                self._feed_lane(mc, qi, q)
        # Deliveries.
        if self._in_flight:
            remaining = []
            for arrive, pkt in self._in_flight:
                if arrive <= now:
                    pkt.received_at = now
                    self.stats.on_delivery(pkt, hops=1)
                    if self.on_delivery is not None:
                        self.on_delivery(pkt.dest, pkt, now)
                else:
                    remaining.append((arrive, pkt))
            self._in_flight = remaining
        self.now = now + 1
        self.stats.cycles = self.now

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    # Compatibility shims with Network's stats surface used by the system.
    def injection_link_utilization(self) -> float:
        return 0.0

    def mesh_link_utilization(self) -> float:
        return 0.0

    def ni_occupancy(self, node: int) -> float:
        return float(
            sum(self._queue_flits(q) for q in self._queues.get(node, []))
        )
