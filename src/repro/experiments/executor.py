"""Process-pool sweep execution engine.

Shards a batch of :class:`~repro.experiments.runner.RunSpec` runs across a
``concurrent.futures.ProcessPoolExecutor``: specs are deduplicated by
content key, cache hits are resolved from the
:class:`~repro.experiments.store.ResultStore` up front, and only the
misses are submitted to workers in chunks (amortizing pickle/IPC cost).
Failed runs — whether an in-worker exception or a hard worker crash that
breaks the pool — are retried per run, and a run that keeps failing
raises :class:`ExecutorError` naming its spec.

Every spec carries its own seed and the simulator holds no process-global
state that affects results, so a parallel sweep is record-for-record
identical to the serial one; only the host-profiling extras
(``*_wall_s``, ``sim_cycles_per_sec``) differ between runs.

Progress is observable three ways: a ``progress(done, total, spec,
source)`` callback (``source`` is ``"cache"``, ``"run"`` or ``"retry"``),
the executor's :class:`~repro.telemetry.HostProfiler` (phases + run/cycle
rates), and an optional telemetry sink receiving ``exec.*`` channel
samples (see docs/observability.md).
"""

from __future__ import annotations

import dataclasses
import math
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.energy.gpuwattch import energy_per_work
from repro.experiments.runner import RunSpec, build_system
from repro.experiments.store import ResultStore, coerce_record, default_store
from repro.gpu.system import SimulationResult
from repro.telemetry.profiler import HostProfiler

#: Environment knob: default worker count when ``workers=None`` is passed.
WORKERS_ENV = "REPRO_WORKERS"

#: Test hook: when set to a directory, every spec's first attempt raises
#: (a marker file per key records that the fault already fired), so the
#: crash-retry path is exercisable deterministically across processes.
FAULT_DIR_ENV = "REPRO_EXECUTOR_FAULT_DIR"

#: Environment knob: per-cycle flow-control invariant auditing.  ``1`` (or
#: ``raise``) fails the run on the first violation; ``collect`` accumulates
#: violations into ``extras["invariant_violations"]`` instead.
INVARIANTS_ENV = "REPRO_CHECK_INVARIANTS"

ProgressFn = Callable[[int, int, RunSpec, str], None]


class ExecutorError(RuntimeError):
    """A run kept failing after all retries; carries the offending spec."""

    def __init__(self, message: str, spec: RunSpec):
        super().__init__(message)
        self.spec = spec


def resolve_workers(workers: Optional[int]) -> int:
    """Effective worker count: explicit > ``REPRO_WORKERS`` > serial.

    Zero or negative means "all cores" (``os.cpu_count()``).
    """
    if workers is None:
        try:
            workers = int(os.environ.get(WORKERS_ENV, "1"))
        except ValueError:
            workers = 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return workers


def _maybe_inject_fault(spec: RunSpec) -> None:
    fault_dir = os.environ.get(FAULT_DIR_ENV)
    if not fault_dir:
        return
    marker = os.path.join(fault_dir, spec.key())
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write(spec.benchmark)
        raise RuntimeError(
            f"injected fault: {spec.benchmark}/{spec.scheme} (first attempt)"
        )


def resolve_invariant_mode(check_invariants=None) -> Optional[str]:
    """Resolve invariant auditing to ``"raise"``, ``"collect"`` or ``None``.

    An explicit argument wins (``True`` = raise, ``False`` = off even when
    the env var is set); otherwise :data:`INVARIANTS_ENV` decides.
    """
    if check_invariants is not None:
        if check_invariants is False:
            return None
        if check_invariants is True:
            return "raise"
        if check_invariants in ("raise", "collect"):
            return check_invariants
        raise ValueError(
            "check_invariants must be True/False/'raise'/'collect', "
            f"got {check_invariants!r}"
        )
    env = os.environ.get(INVARIANTS_ENV, "").strip().lower()
    if env in ("1", "true", "raise"):
        return "raise"
    if env == "collect":
        return "collect"
    return None


def install_spec_faults(spec: RunSpec, system):
    """Install the spec's fault plan on a built system.

    Returns ``(injectors, faulted)`` — ``injectors`` is None when the spec
    carries no plan (the subsystem is then never imported, keeping the
    zero-overhead contract), and ``faulted`` is False for an empty plan.
    """
    if spec.faults is None:
        return None, False
    from repro.faults import FaultPlan, install_system_faults

    plan = FaultPlan.parse(spec.faults)
    detour = spec.fault_detour if spec.fault_detour is not None else True
    injectors = install_system_faults(system, plan, detour=detour)
    return injectors, not plan.empty


def attach_auditors(spec: RunSpec, system, mode: str):
    """Hook an :class:`InvariantChecker` onto each mesh network.

    The context string (benchmark/scheme/seed/net) rides inside every
    violation message, so a failure out of a parallel sweep is
    reproducible from the error text alone.
    """
    from repro.noc.network import Network
    from repro.noc.validation import InvariantChecker

    context = f"{spec.benchmark}/{spec.scheme} seed={spec.seed}"
    auditors = []
    for name, net in (("req", system.request_net), ("rep", system.reply_net)):
        if isinstance(net, Network):
            checker = InvariantChecker(
                net,
                context=f"{context} net={name}",
                collect=(mode == "collect"),
            )
            net.auditor = checker
            auditors.append(checker)
    return auditors


def fault_extras(system, injectors) -> Dict[str, float]:
    """Degradation metrics for a faulted run (merged into extras)."""
    req, rep = system.request_net.stats, system.reply_net.stats
    delivered = req.packets_delivered + rep.packets_delivered
    dropped = req.packets_dropped + rep.packets_dropped
    resolved = delivered + dropped
    out = {
        "delivered_fraction": (delivered / resolved) if resolved else 1.0,
        "packets_dropped": float(dropped),
    }
    totals: Dict[str, float] = {}
    for injector in injectors.values():
        for key, value in injector.summary().items():
            totals[key] = totals.get(key, 0.0) + value
    out.update(totals)
    out["fault_drops_total"] = sum(
        i.stats.drops_total for i in injectors.values()
    )
    return out


def simulate_spec(
    spec: RunSpec, check_invariants=None
) -> SimulationResult:
    """Simulate one spec fresh (no cache involved).

    Also records host-side profiling (build / simulate wall time and
    simulated cycles per second) in ``result.extras`` so every artifact
    carries the perf trajectory of the simulator itself.  Specs carrying
    a fault plan get the :mod:`repro.faults` subsystem installed (lazily
    imported — a plain spec never loads it) plus degradation extras;
    ``check_invariants`` (or :data:`INVARIANTS_ENV`) adds per-cycle
    flow-control audits.
    """
    _maybe_inject_fault(spec)
    mode = resolve_invariant_mode(check_invariants)
    profiler = HostProfiler()
    with profiler.phase("build"):
        system = build_system(spec)
    injectors, faulted = install_spec_faults(spec, system)
    auditors = attach_auditors(spec, system, mode) if mode is not None else []
    with profiler.phase("measure"):
        result = system.simulate(
            cycles=spec.cycles,
            warmup=spec.warmup,
            on_deadlock="record" if faulted else "raise",
        )
    if faulted:
        result.extras.update(fault_extras(system, injectors))
    if mode is not None:
        result.extras["invariant_violations"] = float(
            sum(len(a.violations) for a in auditors)
        )
    profiler.count("cycles", spec.cycles + spec.warmup)
    # Attach the energy-model output (Fig. 14) while we still hold the system.
    ari_on = "ari" in spec.scheme
    result.extras["energy_per_instr"] = energy_per_work(system, ari_enabled=ari_on)
    # Host-profiling extras are diagnostic-only: they describe the run
    # that produced the artifact, never feed back into simulation state.
    result.extras["build_wall_s"] = profiler.phase_seconds("build")  # taint: sanitize(wallclock)
    result.extras["sim_wall_s"] = profiler.phase_seconds("measure")  # taint: sanitize(wallclock)
    result.extras["sim_cycles_per_sec"] = profiler.rate("cycles", "measure")  # taint: sanitize(wallclock)
    return result


def _run_chunk(payloads: List[dict], check_invariants=None) -> List[dict]:
    """Worker entry point: simulate a chunk of spec dicts, return result dicts."""
    out = []
    for payload in payloads:
        spec = RunSpec(**payload)
        out.append(
            dataclasses.asdict(
                simulate_spec(spec, check_invariants=check_invariants)
            )
        )
    return out


@dataclass
class ExecutionReport:
    """What one :meth:`SweepExecutor.run_many` call did, machine-readable."""

    total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    retried: int = 0
    deduplicated: int = 0
    workers: int = 1
    chunk_size: int = 1
    wall_s: float = 0.0
    sim_cycles: int = 0

    def runs_per_sec(self) -> float:
        return self.executed / self.wall_s if self.wall_s > 0 else 0.0

    def cycles_per_sec(self) -> float:
        return self.sim_cycles / self.wall_s if self.wall_s > 0 else 0.0

    def cache_hit_fraction(self) -> float:
        """Fraction of unique specs resolved from the result store.

        Duplicate specs (deduplicated in-batch) are not counted either
        way; a batch with no unique specs reports 0.0.
        """
        resolved = self.cache_hits + self.cache_misses
        return self.cache_hits / resolved if resolved else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            **dataclasses.asdict(self),
            "runs_per_sec": self.runs_per_sec(),
            "cycles_per_sec": self.cycles_per_sec(),
            "cache_hit_fraction": self.cache_hit_fraction(),
        }


class SweepExecutor:
    """Runs batches of specs, parallel when ``workers > 1``, cached, retried.

    Parameters
    ----------
    workers:
        Process count; ``None`` reads ``REPRO_WORKERS`` (default serial),
        ``0`` means all cores.
    chunk_size:
        Specs per pool task; ``None`` picks ``ceil(misses / (workers*4))``
        capped at 8, so each worker sees several chunks (load balance)
        while submission stays amortized.
    retries:
        Re-attempts per failing run before :class:`ExecutorError`.
    store:
        :class:`ResultStore` for read-through caching; ``None`` uses the
        process default.  ``use_cache=False`` skips both read and write.
    progress:
        ``progress(done, total, spec, source)`` per completed run.
    sink:
        Optional :class:`~repro.telemetry.TelemetrySink`; receives one
        sample per completion on the ``exec.*`` channels.
    check_invariants:
        Per-cycle flow-control auditing for every run; ``True``/"raise"
        fails fast, ``"collect"`` records counts, ``None`` defers to
        :data:`INVARIANTS_ENV`.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        retries: int = 2,
        store: Optional[ResultStore] = None,
        use_cache: bool = True,
        progress: Optional[ProgressFn] = None,
        profiler: Optional[HostProfiler] = None,
        sink=None,
        check_invariants=None,
    ):
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.retries = retries
        self.store = store
        self.use_cache = use_cache
        self.progress = progress
        self.profiler = profiler if profiler is not None else HostProfiler()
        self.sink = sink
        self.check_invariants = check_invariants
        self.report = ExecutionReport()

    # -- public -------------------------------------------------------------
    def run_many(self, specs: Sequence[RunSpec]) -> List[SimulationResult]:
        """Run every spec; results come back in input order."""
        specs = list(specs)
        report = self.report = ExecutionReport(
            total=len(specs), workers=self.workers
        )
        if not specs:
            return []
        store = self.store if self.store is not None else default_store()

        results: Dict[int, SimulationResult] = {}
        self._done = 0

        # Resolve duplicates: identical keys run once, fan out afterwards.
        first_of: Dict[str, int] = {}
        duplicates: Dict[int, int] = {}
        unique: List[int] = []
        for i, spec in enumerate(specs):
            key = spec.key()
            if key in first_of:
                duplicates[i] = first_of[key]
                report.deduplicated += 1
            else:
                first_of[key] = i
                unique.append(i)

        with self.profiler.phase("sweep"):
            misses: List[int] = []
            with self.profiler.phase("cache"):
                for i in unique:
                    hit = store.get(specs[i].key()) if self.use_cache else None
                    cached = coerce_record(hit) if hit is not None else None
                    if cached is not None:
                        results[i] = cached
                        report.cache_hits += 1
                        self._emit(specs[i], "cache")
                    else:
                        if hit is not None:
                            import warnings

                            warnings.warn(
                                "ignoring legacy-format cache entry for "
                                f"{specs[i].key()[:12]}; re-simulating",
                                RuntimeWarning,
                                stacklevel=2,
                            )
                        report.cache_misses += 1
                        misses.append(i)

            def complete(i: int, result: SimulationResult) -> None:
                results[i] = result
                report.executed += 1
                report.sim_cycles += specs[i].cycles + specs[i].warmup
                if self.use_cache:
                    store.put(specs[i].key(), dataclasses.asdict(result))
                self._emit(specs[i], "run")

            if misses:
                with self.profiler.phase("execute"):
                    if min(self.workers, len(misses)) <= 1:
                        for i in misses:
                            complete(i, self._run_serial(specs[i]))
                    else:
                        self._run_pool(specs, misses, complete)

        report.wall_s = self.profiler.phase_seconds("execute")
        self.profiler.count("runs", report.executed)
        self.profiler.count("cache_hits", report.cache_hits)
        self.profiler.count("cycles", report.sim_cycles)

        for i, src in duplicates.items():
            results[i] = results[src]
            self._emit(specs[i], "cache")
        return [results[i] for i in range(len(specs))]

    # -- internals ----------------------------------------------------------
    def _emit(self, spec: RunSpec, source: str) -> None:
        if source != "retry":
            self._done += 1
        if self.progress is not None:
            self.progress(self._done, self.report.total, spec, source)
        if self.sink is not None:
            from repro.telemetry import TelemetrySample

            self.sink.emit(
                TelemetrySample(
                    self._done,
                    {
                        "exec.done": self._done,
                        "exec.total": self.report.total,
                        "exec.cache_hits": self.report.cache_hits,
                        "exec.retries": self.report.retried,
                    },
                )
            )

    def _run_serial(self, spec: RunSpec) -> SimulationResult:
        last: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            try:
                return simulate_spec(
                    spec, check_invariants=self.check_invariants
                )
            except Exception as exc:  # noqa: BLE001 - retry any run failure
                last = exc
                if attempt < self.retries:
                    self.report.retried += 1
                    self._emit(spec, "retry")
        raise ExecutorError(
            f"run failed after {self.retries + 1} attempts: "
            f"{spec.benchmark}/{spec.scheme} ({last})",
            spec,
        ) from last

    def _run_pool(
        self,
        specs: Sequence[RunSpec],
        misses: List[int],
        complete: Callable[[int, SimulationResult], None],
    ) -> None:
        workers = min(self.workers, len(misses))
        chunk = self.chunk_size or min(
            8, max(1, math.ceil(len(misses) / (workers * 4)))
        )
        self.report.chunk_size = chunk

        attempts: Dict[int, int] = {i: 0 for i in misses}
        pool = ProcessPoolExecutor(max_workers=workers)
        futures: Dict[object, List[int]] = {}

        def submit(group: List[int]) -> None:
            payload = [dataclasses.asdict(specs[i]) for i in group]
            futures[
                pool.submit(_run_chunk, payload, self.check_invariants)
            ] = group

        def requeue(group: List[int], broken: bool) -> None:
            nonlocal pool
            if broken:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=workers)
            # A multi-spec chunk failure can't be attributed to one run:
            # split it and retry each spec alone; only singleton failures
            # count against the per-run retry budget.
            if len(group) == 1:
                i = group[0]
                attempts[i] += 1
                if attempts[i] > self.retries:
                    raise ExecutorError(
                        f"run failed after {self.retries + 1} attempts: "
                        f"{specs[i].benchmark}/{specs[i].scheme}",
                        specs[i],
                    )
                self.report.retried += 1
                self._emit(specs[i], "retry")
                submit([i])
            else:
                for i in group:
                    submit([i])

        try:
            for j in range(0, len(misses), chunk):
                submit(misses[j : j + chunk])
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for fut in done:
                    group = futures.pop(fut)
                    try:
                        payloads = fut.result()
                    except BrokenProcessPool:
                        requeue(group, broken=True)
                    except Exception:  # noqa: BLE001 - retried per run
                        requeue(group, broken=False)
                    else:
                        for i, payload in zip(group, payloads):
                            complete(i, SimulationResult(**payload))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
