"""Public experiments API: run one spec, a batch, or a whole design space.

This is the single entry surface the figure drivers, the CLI, and the
examples sit on::

    from repro.experiments.api import run, run_many, sweep, grid

    res = run(RunSpec("bfs", "ada-ari"))                  # cached single run
    results = run_many(specs, workers=4)                  # sharded batch
    records = sweep(base, axes={"num_vcs": [2, 4]})       # tidy records
    out = grid(["bfs"], ["xy-baseline", "ada-ari"])       # out[bm][scheme]

All cached entry points go through one :class:`~repro.experiments.store.
ResultStore` (``store=`` to override, ``REPRO_CACHE`` for the default
location) and one :class:`~repro.experiments.executor.SweepExecutor`
(``workers=`` to parallelize; every spec carries its own seed, so
parallel output is record-for-record identical to serial).

Live runs with telemetry attached never consult the cache; use
:func:`run_live` (or ``run(spec, telemetry=...)``) for those.  The old
``run_system`` / ``run_with_telemetry`` / ``runner.sweep`` /
``cartesian_sweep`` names remain as thin deprecated wrappers.
"""

from __future__ import annotations

import dataclasses
import itertools
import warnings
from dataclasses import fields, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.executor import (
    SweepExecutor,
    fault_extras,
    install_spec_faults,
    resolve_invariant_mode,
    simulate_spec,
)
from repro.experiments.runner import RunSpec
from repro.experiments.store import ResultStore, coerce_record, default_store
from repro.gpu.system import SimulationResult
from repro.telemetry.profiler import HostProfiler

#: Result metrics exported by default from :func:`sweep` records.
DEFAULT_METRICS = (
    "ipc",
    "mc_stall_per_reply",
    "request_latency",
    "reply_latency",
    "reply_traffic_share",
    "l2_hit_rate",
)

_SPEC_FIELDS = {f.name for f in fields(RunSpec)}


def _validate_specs(specs: Sequence[RunSpec], strict: Optional[bool]) -> None:
    """Static-check specs before any simulation work (or worker) starts.

    ``strict=True`` escalates warnings to errors, ``strict=False`` forces
    the default warn mode, ``None`` defers to the ``REPRO_STATICCHECK``
    env var ("off" disables the gate entirely).  Reports are memoized by
    model signature, so batches pay per distinct configuration, not per
    spec.
    """
    from repro.staticcheck.runner import validate_spec

    if strict is None:
        mode = None
    else:
        mode = "strict" if strict else "warn"
    for spec in specs:
        validate_spec(spec, mode=mode)


@dataclasses.dataclass
class LiveRun:
    """Everything a live (telemetry-instrumented) run produces."""

    result: SimulationResult
    collector: object
    system: object


def run(
    spec: RunSpec,
    *,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    telemetry=None,
    interval: int = 100,
    jsonl_path: Optional[str] = None,
    csv_path: Optional[str] = None,
    check_invariants=None,
    strict: Optional[bool] = None,
) -> SimulationResult:
    """Run one spec and return its :class:`SimulationResult`.

    Without ``telemetry`` this is a cached run: the result store is
    consulted first and fresh results are written back.  With
    ``telemetry`` (``True`` for a default collector, or a
    :class:`~repro.telemetry.TelemetryCollector` you keep a reference
    to), the run is live and the cache is bypassed — use
    :func:`run_live` when you also need the collector/system back.

    ``check_invariants`` turns on per-cycle flow-control auditing
    (``True``/"raise" fails on the first violation, ``"collect"``
    records a count in extras; default defers to the
    ``REPRO_CHECK_INVARIANTS`` env var).  A run asked to *raise* on
    violations never reads the cache — a cached record proves nothing
    about invariants, so the simulation is redone under audit.

    Every entry point first static-checks the spec
    (:func:`repro.staticcheck.validate_spec`): blocking findings raise
    :class:`~repro.staticcheck.StaticCheckError` before any cycle runs.
    ``strict=True`` escalates warnings to errors; the
    ``REPRO_STATICCHECK`` env var ("off"/"warn"/"strict") sets the
    default.
    """
    if telemetry is None and spec.telemetry is not None:
        # RunSpec.telemetry carries the sampling interval; a spec that
        # asks for telemetry is a live run like an explicit telemetry=.
        telemetry = True
        interval = spec.telemetry
    if telemetry:
        collector = None if telemetry is True else telemetry
        # The LiveRun aggregate holds the collector (and its host
        # profiler); only .result escapes here, and its wall-time extras
        # are already discharged at their assignments in run_live.
        return run_live(  # taint: sanitize(wallclock)
            spec,
            collector=collector,
            interval=interval,
            jsonl_path=jsonl_path,
            csv_path=csv_path,
            strict=strict,
        ).result
    _validate_specs([spec], strict)
    mode = resolve_invariant_mode(check_invariants)
    st = store if store is not None else default_store()
    if use_cache and mode != "raise":
        hit = st.get(spec.key())
        if hit is not None:
            cached = coerce_record(hit)
            if cached is not None:
                return cached
            warnings.warn(
                f"ignoring legacy-format cache entry for {spec.key()[:12]}; "
                "re-simulating (run `repro cache --clear` to purge)",
                RuntimeWarning,
                stacklevel=2,
            )
    result = simulate_spec(spec, check_invariants=check_invariants)
    if use_cache:
        st.put(spec.key(), dataclasses.asdict(result))
    return result


def run_live(
    spec: RunSpec,
    *,
    collector=None,
    interval: int = 100,
    jsonl_path: Optional[str] = None,
    csv_path: Optional[str] = None,
    strict: Optional[bool] = None,
) -> LiveRun:
    """Simulate one spec with a telemetry collector attached.

    Telemetry needs a *live* run, so this never consults the result
    store.  The returned :class:`LiveRun` carries the result, the
    collector (always holding an in-memory sink plus optional JSONL/CSV
    artifact sinks when paths are given), and the simulated system —
    figure drivers and the ``repro telemetry`` CLI both sit here.
    """
    _validate_specs([spec], strict)
    from repro.telemetry import (
        CSVSink,
        JSONLSink,
        MemorySink,
        TelemetryCollector,
    )

    if collector is None:
        sinks = [MemorySink()]
        if jsonl_path:
            sinks.append(JSONLSink(jsonl_path))
        if csv_path:
            sinks.append(CSVSink(csv_path))
        collector = TelemetryCollector(interval=interval, sinks=sinks)
    profiler = collector.profiler
    with profiler.phase("build"):
        from repro.experiments.runner import build_system

        system = build_system(spec)
    system.attach_telemetry(collector)
    injectors, faulted = install_spec_faults(spec, system)
    if injectors:
        from repro.faults import FaultProbe

        collector.add_probe(FaultProbe(list(injectors.values())))
    with profiler.phase("measure"):
        result = system.simulate(
            cycles=spec.cycles,
            warmup=spec.warmup,
            on_deadlock="record" if faulted else "raise",
        )
    if faulted:
        result.extras.update(fault_extras(system, injectors))
    profiler.count("cycles", spec.cycles + spec.warmup)
    profiler.count(
        "packets",
        system.request_net.stats.packets_delivered
        + system.reply_net.stats.packets_delivered,
    )
    # Diagnostic-only host timings (see simulate_spec): telemetry runs
    # bypass the cache, and the values never steer simulation state.
    result.extras["sim_wall_s"] = profiler.phase_seconds("measure")  # taint: sanitize(wallclock)
    result.extras["sim_cycles_per_sec"] = profiler.rate("cycles", "measure")  # taint: sanitize(wallclock)
    collector.close()
    return LiveRun(result=result, collector=collector, system=system)


def run_many(
    specs: Sequence[RunSpec],
    *,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    retries: int = 2,
    chunk_size: Optional[int] = None,
    progress=None,
    profiler: Optional[HostProfiler] = None,
    sink=None,
    check_invariants=None,
    strict: Optional[bool] = None,
    on_report=None,
) -> List[SimulationResult]:
    """Run a batch of specs (sharded across processes when ``workers>1``).

    Results come back in input order; duplicate specs are simulated once.
    See :class:`~repro.experiments.executor.SweepExecutor` for the knobs,
    per-run crash retry semantics, and ``check_invariants``.  Every spec
    is static-checked before the first worker spawns (see :func:`run`).
    ``on_report`` (if given) receives the batch's
    :class:`~repro.experiments.executor.ExecutionReport` — cache
    hit/miss counts, retry counts, wall time — once all runs resolve.
    """
    _validate_specs(specs, strict)
    executor = SweepExecutor(
        workers=workers,
        chunk_size=chunk_size,
        retries=retries,
        store=store,
        use_cache=use_cache,
        progress=progress,
        profiler=profiler,
        sink=sink,
        check_invariants=check_invariants,
    )
    results = executor.run_many(specs)
    if on_report is not None:
        on_report(executor.report)
    return results


def sweep(
    base: RunSpec,
    axes: Mapping[str, Sequence],
    *,
    metrics: Sequence[str] = DEFAULT_METRICS,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    retries: int = 2,
    chunk_size: Optional[int] = None,
    progress=None,
    strict: Optional[bool] = None,
    on_report=None,
) -> List[Dict[str, object]]:
    """Run every combination of ``axes`` over ``base``; one record per run.

    Each record contains the axis values plus the requested result
    metrics, in cartesian-product order regardless of worker count.
    ``progress(done, total, spec, source)`` is called per completed run;
    ``on_report`` receives the batch's ExecutionReport (cache hits and
    misses, retries, wall time) once all runs resolve.
    """
    for name in axes:
        if name not in _SPEC_FIELDS:
            raise ValueError(
                f"unknown RunSpec field {name!r}; valid: {sorted(_SPEC_FIELDS)}"
            )
    names = list(axes)
    combos = list(itertools.product(*(axes[n] for n in names)))
    specs = [replace(base, **dict(zip(names, combo))) for combo in combos]
    results = run_many(
        specs,
        workers=workers,
        store=store,
        use_cache=use_cache,
        retries=retries,
        chunk_size=chunk_size,
        progress=progress,
        strict=strict,
        on_report=on_report,
    )
    records: List[Dict[str, object]] = []
    for combo, spec, result in zip(combos, specs, results):
        record: Dict[str, object] = dict(zip(names, combo))
        record["benchmark"] = spec.benchmark
        record["scheme"] = spec.scheme
        for m in metrics:
            record[m] = getattr(result, m)
        records.append(record)
    return records


def grid(
    benchmarks: Sequence[str],
    schemes: Sequence[str],
    *,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    retries: int = 2,
    progress=None,
    strict: Optional[bool] = None,
    **spec_kwargs,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run a benchmark x scheme grid; returns ``out[benchmark][scheme]``."""
    specs = [
        RunSpec(benchmark=bm, scheme=sch, **spec_kwargs)
        for bm in benchmarks
        for sch in schemes
    ]
    results = run_many(
        specs,
        workers=workers,
        store=store,
        use_cache=use_cache,
        retries=retries,
        progress=progress,
        strict=strict,
    )
    out: Dict[str, Dict[str, SimulationResult]] = {}
    it = iter(results)
    for bm in benchmarks:
        out[bm] = {}
        for sch in schemes:
            out[bm][sch] = next(it)
    return out
