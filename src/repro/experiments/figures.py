"""Drivers that regenerate every table and figure of the paper.

Every driver returns a dict with at least:

* ``"table"`` — rendered ASCII table (the figure's underlying series);
* ``"summary"`` — the headline number(s) the paper quotes in prose;
* ``"paper"`` — what the paper reports, for EXPERIMENTS.md side-by-sides.

``scale`` selects the simulation budget: ``"smoke"`` (seconds, CI benches),
``"quick"`` (a stratified 9-benchmark subset), ``"paper"`` (all 30
benchmarks, longer windows).  ``workers`` shards each driver's run grid
across processes via :func:`repro.experiments.api.run_many` (default:
``REPRO_WORKERS`` env, serial otherwise); results are identical at any
worker count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.energy.area import AreaModel
from repro.experiments.api import grid, run_many
from repro.experiments.report import render_grid, render_kv
from repro.experiments.runner import RunSpec, geometric_mean, normalized
from repro.noc.flit import PacketType
from repro.workloads.suite import (
    PAPER_FIG15_BENCHMARKS,
    PAPER_FIG6_BENCHMARKS,
    PAPER_FIG9_BENCHMARKS,
    benchmark_names,
)

SCALES: Dict[str, Dict[str, int]] = {
    "smoke": {"cycles": 400, "warmup": 150},
    "quick": {"cycles": 1000, "warmup": 300},
    "paper": {"cycles": 1500, "warmup": 400},
}

# Stratified subsets (3 high / 3 medium / 3 low etc.) for the cheap scales.
_SMOKE_BMS = ["bfs", "blackScholes", "scalarProd"]
_QUICK_BMS = [
    "bfs", "hotspot", "mummerGPU",
    "backprop", "blackScholes", "lavaMD",
    "scalarProd", "monteCarlo", "nn",
]


def _budget(scale: str) -> Dict[str, int]:
    try:
        return dict(SCALES[scale])
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; pick from {sorted(SCALES)}")


def _bms(scale: str, override: Optional[Sequence[str]]) -> List[str]:
    if override is not None:
        return list(override)
    if scale == "smoke":
        return list(_SMOKE_BMS)
    if scale == "quick":
        return list(_QUICK_BMS)
    return benchmark_names()


def _run_indexed(specs: Dict[object, RunSpec], workers: Optional[int]):
    """Run a labelled batch in one sharded call; returns ``label -> result``."""
    labels = list(specs)
    results = run_many([specs[l] for l in labels], workers=workers)
    return dict(zip(labels, results))


# ---------------------------------------------------------------------------
# Section 3 — understanding the bottleneck
# ---------------------------------------------------------------------------

def fig3_request_vs_reply_latency(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 3: request packets see much higher latency than reply packets
    under the 128-bit baseline (paper: 5.6x on average)."""
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    out = grid(bms, ["xy-baseline"], workers=workers, **budget)
    rows = {}
    ratios = []
    for bm in bms:
        r = out[bm]["xy-baseline"]
        ratio = r.request_latency / r.reply_latency if r.reply_latency else 0.0
        rows[bm] = {
            "request": r.request_latency,
            "reply": r.reply_latency,
            "ratio": ratio,
        }
        if ratio > 0:
            ratios.append(ratio)
    mean_ratio = geometric_mean(ratios)
    return {
        "rows": rows,
        "summary": {"mean_request_to_reply_ratio": mean_ratio},
        "paper": {"mean_request_to_reply_ratio": 5.6},
        "table": render_grid(rows, ["request", "reply", "ratio"]),
    }


def fig4_link_width_sweep(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 4: doubling reply links helps a lot (+25.6% IPC), doubling
    request links barely (+0.8%) — the reply network is the limiter."""
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    schemes = ["xy-baseline", "xy-baseline-256req", "xy-baseline-256rep"]
    out = grid(bms, schemes, workers=workers, **budget)
    norm = normalized(out, "ipc", "xy-baseline")
    summary = {
        sch: geometric_mean([norm[bm][sch] for bm in bms]) for sch in schemes
    }
    return {
        "rows": norm,
        "summary": {
            "ipc_256bit_request": summary["xy-baseline-256req"],
            "ipc_256bit_reply": summary["xy-baseline-256rep"],
        },
        "paper": {"ipc_256bit_request": 1.008, "ipc_256bit_reply": 1.256},
        "table": render_grid(norm, schemes, summary=summary),
    }


def fig5_packet_type_mix(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 5: flit-weighted packet mix; reply traffic dominates (72.7%)."""
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    out = grid(bms, ["xy-baseline"], workers=workers, **budget)
    kinds = [t.name.lower() for t in PacketType]
    rows = {}
    reply_shares = []
    for bm in bms:
        r = out[bm]["xy-baseline"]
        rows[bm] = {k: r.traffic_mix.get(k, 0.0) for k in kinds}
        reply_shares.append(r.reply_traffic_share)
    mean_reply = sum(reply_shares) / len(reply_shares) if reply_shares else 0.0
    return {
        "rows": rows,
        "summary": {"mean_reply_flit_share": mean_reply},
        "paper": {"mean_reply_flit_share": 0.727},
        "table": render_grid(rows, kinds),
    }


def fig6_queue_occupancy(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    capacities_pkts: Sequence[int] = (4, 8, 16, 32, 48, 64, 80),
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 6: NI injection queue occupancy tracks its capacity — proof that
    the injection point, not the network interior, is the bottleneck."""
    budget = _budget(scale)
    bms = list(benchmarks) if benchmarks is not None else list(PAPER_FIG6_BENCHMARKS)
    if scale == "smoke":
        bms = bms[:2]
    long_pkt = 9
    results = _run_indexed(
        {
            (bm, cap): RunSpec(
                benchmark=bm,
                scheme="xy-baseline",
                ni_queue_flits=cap * long_pkt,
                **budget,
            )
            for bm in bms
            for cap in capacities_pkts
        },
        workers,
    )
    rows: Dict[str, Dict[str, float]] = {
        bm: {
            str(cap): results[(bm, cap)].mean_ni_occupancy
            for cap in capacities_pkts
        }
        for bm in bms
    }
    # Tracking score: occupancy/capacity at the largest capacity.
    largest = str(max(capacities_pkts))
    tracking = {
        bm: rows[bm][largest] / max(capacities_pkts) for bm in bms
    }
    return {
        "rows": rows,
        "summary": {
            "mean_occupancy_over_capacity": sum(tracking.values()) / len(tracking)
        },
        "paper": {
            "mean_occupancy_over_capacity": "close to 1 (occupancy tracks capacity)"
        },
        "table": render_grid(rows, [str(c) for c in capacities_pkts]),
    }


def sec3_link_utilization(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Sec. 3: injection links ~4.5x busier than in-network reply links
    (paper: 0.39 vs 0.084 flits/cycle)."""
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    out = grid(bms, ["xy-baseline"], workers=workers, **budget)
    inj = [out[bm]["xy-baseline"].injection_link_util for bm in bms]
    mesh = [out[bm]["xy-baseline"].mesh_link_util for bm in bms]
    mean_inj = sum(inj) / len(inj)
    mean_mesh = sum(mesh) / len(mesh)
    return {
        "rows": {
            bm: {"injection": i, "in_network": m}
            for bm, i, m in zip(bms, inj, mesh)
        },
        "summary": {
            "mean_injection_util": mean_inj,
            "mean_in_network_util": mean_mesh,
            "ratio": mean_inj / mean_mesh if mean_mesh else 0.0,
        },
        "paper": {
            "mean_injection_util": 0.39,
            "mean_in_network_util": 0.084,
            "ratio": 4.5,
        },
        "table": render_grid(
            {bm: {"injection": i, "in_network": m} for bm, i, m in zip(bms, inj, mesh)},
            ["injection", "in_network"],
        ),
    }


# ---------------------------------------------------------------------------
# Section 5 / 7 — ARI evaluation
# ---------------------------------------------------------------------------

def fig9_priority_levels(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    levels: Sequence[int] = (1, 2, 3, 4, 5, 6),
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 9: IPC improvement vs. number of priority levels; two levels
    capture most of the benefit."""
    budget = _budget(scale)
    bms = list(benchmarks) if benchmarks is not None else list(PAPER_FIG9_BENCHMARKS)
    results = _run_indexed(
        {
            (bm, lv): RunSpec(
                benchmark=bm, scheme="ada-ari", priority_levels=lv, **budget
            )
            for bm in bms
            for lv in levels
        },
        workers,
    )
    bases = _run_indexed(
        {
            bm: RunSpec(
                benchmark=bm, scheme="ada-ari", priority_levels=1, **budget
            )
            for bm in bms
        },
        workers,
    )
    rows: Dict[str, Dict[str, float]] = {
        bm: {
            str(lv): results[(bm, lv)].ipc / bases[bm].ipc - 1.0
            for lv in levels
        }
        for bm in bms
    }
    two_level = {bm: rows[bm]["2"] for bm in bms}
    return {
        "rows": rows,
        "summary": {"two_level_improvement": two_level},
        "paper": {
            "two_level_improvement": "most of the benefit at 2 levels (bfs ~+9%)"
        },
        "table": render_grid(rows, [str(l) for l in levels]),
    }


_FIG10_SCHEMES = [
    "ada-baseline", "acc-supply", "acc-consume", "acc-both", "ada-ari",
]


def fig10_supply_consume_ablation(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 10: supply-only and consume-only barely help (supply-only can
    hurt); both together give ~13.5%; priority adds the rest (ARI)."""
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    out = grid(bms, _FIG10_SCHEMES, workers=workers, **budget)
    norm = normalized(out, "ipc", "ada-baseline")
    summary = {
        sch: geometric_mean([norm[bm][sch] for bm in bms])
        for sch in _FIG10_SCHEMES
    }
    return {
        "rows": norm,
        "summary": summary,
        "paper": {
            "acc-supply": "~1.0 or below (can hurt)",
            "acc-consume": "~1.0",
            "acc-both": 1.135,
            "ada-ari": "higher than acc-both",
        },
        "table": render_grid(norm, _FIG10_SCHEMES, summary=summary),
    }


_FIG11_SCHEMES = [
    "xy-baseline", "xy-ari", "ada-baseline", "ada-multiport", "ada-ari",
]


def fig11_scheme_comparison(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 11: the headline comparison.  Paper: XY-ARI +8% over XY-Base;
    Ada-Base slightly below XY-Base; MultiPort +2% over Ada-Base;
    Ada-ARI +15.4% over Ada-Base (~1/3 of benchmarks near 1.4x)."""
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    out = grid(bms, _FIG11_SCHEMES, workers=workers, **budget)
    norm = normalized(out, "ipc", "xy-baseline")
    summary = {
        sch: geometric_mean([norm[bm][sch] for bm in bms])
        for sch in _FIG11_SCHEMES
    }
    ada_ari_vs_ada = geometric_mean(
        [norm[bm]["ada-ari"] / norm[bm]["ada-baseline"] for bm in bms]
    )
    multiport_vs_ada = geometric_mean(
        [norm[bm]["ada-multiport"] / norm[bm]["ada-baseline"] for bm in bms]
    )
    return {
        "rows": norm,
        "summary": {
            **summary,
            "ada-ari_vs_ada-baseline": ada_ari_vs_ada,
            "ada-multiport_vs_ada-baseline": multiport_vs_ada,
        },
        "paper": {
            "xy-ari": 1.08,
            "ada-ari_vs_ada-baseline": 1.154,
            "ada-multiport_vs_ada-baseline": 1.02,
            "ada-baseline": "slightly below 1.0",
        },
        "table": render_grid(norm, _FIG11_SCHEMES, summary=summary),
    }


def fig12_mc_stall_time(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 12: data stall time in MCs (per reply, equal-work normalized).
    Paper: -47.5% (XY-ARI vs XY-Base), -67.8% (Ada-ARI vs Ada-Base)."""
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    out = grid(bms, _FIG11_SCHEMES, workers=workers, **budget)
    norm = normalized(out, "mc_stall_per_reply", "xy-baseline")
    xy_red = []
    ada_red = []
    for bm in bms:
        row = out[bm]
        b = row["xy-baseline"].mc_stall_per_reply
        ab = row["ada-baseline"].mc_stall_per_reply
        if b > 1.0:
            xy_red.append(1.0 - row["xy-ari"].mc_stall_per_reply / b)
        if ab > 1.0:
            ada_red.append(1.0 - row["ada-ari"].mc_stall_per_reply / ab)
    summary = {
        "xy_ari_stall_reduction": sum(xy_red) / len(xy_red) if xy_red else 0.0,
        "ada_ari_stall_reduction": sum(ada_red) / len(ada_red) if ada_red else 0.0,
    }
    return {
        "rows": norm,
        "summary": summary,
        "paper": {
            "xy_ari_stall_reduction": 0.475,
            "ada_ari_stall_reduction": 0.678,
        },
        "table": render_grid(norm, _FIG11_SCHEMES),
    }


def fig13_latency_decomposition(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 13: request + reply latency per scheme.  ARI cuts the *request*
    latency too, although it changes nothing in the request network —
    confirming the bottleneck is on the reply side."""
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    out = grid(bms, _FIG11_SCHEMES, workers=workers, **budget)
    rows: Dict[str, Dict[str, float]] = {}
    for bm in bms:
        rows[bm] = {}
        for sch in _FIG11_SCHEMES:
            r = out[bm][sch]
            rows[bm][f"{sch}.req"] = r.request_latency
            rows[bm][f"{sch}.rep"] = r.reply_latency
    req_drop = geometric_mean(
        [
            out[bm]["ada-baseline"].request_latency
            / max(1e-9, out[bm]["ada-ari"].request_latency)
            for bm in bms
        ]
    )
    return {
        "rows": rows,
        "summary": {"request_latency_drop_ada_ari": req_drop},
        "paper": {
            "request_latency_drop_ada_ari": "considerable (ARI untouched request net)"
        },
        "table": render_grid(
            rows, [f"{s}.{p}" for s in _FIG11_SCHEMES for p in ("req", "rep")]
        ),
    }


def fig14_energy(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 14: overall energy down ~4% with ARI, driven by the static
    share of the shortened execution (equal-work: energy/instruction)."""
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    out = grid(bms, ["ada-baseline", "ada-ari"], workers=workers, **budget)
    rows: Dict[str, Dict[str, float]] = {}
    ratios = []
    for bm in bms:
        e_base = out[bm]["ada-baseline"].extras["energy_per_instr"]
        e_ari = out[bm]["ada-ari"].extras["energy_per_instr"]
        rows[bm] = {
            "baseline": 1.0,
            "ari": e_ari / e_base if e_base else 0.0,
        }
        if e_base:
            ratios.append(e_ari / e_base)
    mean = geometric_mean(ratios)
    return {
        "rows": rows,
        "summary": {"mean_normalized_energy_ari": mean},
        "paper": {"mean_normalized_energy_ari": 0.96},
        "table": render_grid(rows, ["baseline", "ari"]),
    }


def fig15_vc_sensitivity(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 15: 2 vs 4 VCs, baseline vs ARI (speedup = VC count).  ARI
    exploits added VCs far better than the baseline."""
    budget = _budget(scale)
    bms = list(benchmarks) if benchmarks is not None else list(PAPER_FIG15_BENCHMARKS)
    if scale == "smoke":
        bms = bms[:2]
    cell_specs = [
        ("2VC-base", "ada-baseline", 2),
        ("4VC-base", "ada-baseline", 4),
        ("2VC-ARI", "ada-ari", 2),
        ("4VC-ARI", "ada-ari", 4),
    ]
    results = _run_indexed(
        {
            (bm, label): RunSpec(
                benchmark=bm,
                scheme=sch,
                num_vcs=vcs,
                injection_speedup=(vcs if "ari" in sch else None),
                **budget,
            )
            for bm in bms
            for label, sch, vcs in cell_specs
        },
        workers,
    )
    rows: Dict[str, Dict[str, float]] = {}
    gains = {"baseline": [], "ari": []}
    for bm in bms:
        cells = {label: results[(bm, label)].ipc for label, _, _ in cell_specs}
        base = cells["2VC-base"]
        rows[bm] = {k: v / base for k, v in cells.items()}
        gains["baseline"].append(rows[bm]["4VC-base"] / rows[bm]["2VC-base"])
        gains["ari"].append(rows[bm]["4VC-ARI"] / rows[bm]["2VC-ARI"])
    summary = {
        "vc_gain_baseline": geometric_mean(gains["baseline"]),
        "vc_gain_ari": geometric_mean(gains["ari"]),
    }
    return {
        "rows": rows,
        "summary": summary,
        "paper": {"note": "2->4 VC gain is considerably larger with ARI"},
        "table": render_grid(rows, ["2VC-base", "4VC-base", "2VC-ARI", "4VC-ARI"]),
    }


def fig16_da2mesh(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Fig. 16: ARI composes with DA2mesh (paper: +16.4% on top)."""
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    out = grid(bms, ["da2mesh", "da2mesh-ari"], workers=workers, **budget)
    norm = normalized(out, "ipc", "da2mesh")
    summary = {
        "da2mesh+ari_vs_da2mesh": geometric_mean(
            [norm[bm]["da2mesh-ari"] for bm in bms]
        )
    }
    return {
        "rows": norm,
        "summary": summary,
        "paper": {"da2mesh+ari_vs_da2mesh": 1.164},
        "table": render_grid(norm, ["da2mesh", "da2mesh-ari"]),
    }


def sec75_scalability(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Sec. 7.5(2): ARI's improvement grows with mesh size
    (paper: +3.7% / +15.4% / +24.7% at 4x4 / 6x6 / 8x8).

    Reported per sensitivity class as well: in this reproduction the
    growing-with-size trend holds for the medium/low classes (whose demand
    only crosses the injection capacity on bigger meshes), while the
    high-sensitivity synthetic workloads saturate *every* mesh size and so
    show a roughly constant (capacity-ratio) gain — see EXPERIMENTS.md for
    the discussion of this deviation.
    """
    budget = _budget(scale)
    bms = _bms("smoke" if scale == "smoke" else "quick", benchmarks)
    from repro.workloads.suite import SUITE

    meshes = (4, 6, 8)
    results = _run_indexed(
        {
            (mesh, bm, sch): RunSpec(
                benchmark=bm, scheme=sch, mesh=mesh, **budget
            )
            for mesh in meshes
            for bm in bms
            for sch in ("ada-baseline", "ada-ari")
        },
        workers,
    )
    rows: Dict[str, Dict[str, float]] = {}
    for mesh in meshes:
        per_class: Dict[str, List[float]] = {"high": [], "medium": [], "low": []}
        for bm in bms:
            base = results[(mesh, bm, "ada-baseline")]
            ari = results[(mesh, bm, "ada-ari")]
            if base.ipc > 0:
                per_class[SUITE[bm].sensitivity].append(ari.ipc / base.ipc)
        all_vals = [v for vs in per_class.values() for v in vs]
        rows[f"{mesh}x{mesh}"] = {
            "all": geometric_mean(all_vals),
            **{
                cls: geometric_mean(vs)
                for cls, vs in per_class.items()
                if vs
            },
        }
    return {
        "rows": rows,
        "summary": {k: v["all"] for k, v in rows.items()},
        "paper": {"4x4": 1.037, "6x6": 1.154, "8x8": 1.247},
        "table": render_grid(
            rows,
            [
                c for c in ("all", "high", "medium", "low")
                if c in next(iter(rows.values()))
            ],
            row_label="mesh",
        ),
    }


def sec61_area() -> Dict:
    """Sec. 6.1: RTL area overheads (5.4% per pair, 0.7% network-wide)."""
    model = AreaModel()
    pair = model.pair_overhead()
    network = model.network_overhead()
    base = model.baseline_tile()
    ari = model.ari_tile()
    rows = {
        "baseline": base.as_dict(),
        "ari": ari.as_dict(),
    }
    return {
        "rows": rows,
        "summary": {"pair_overhead": pair, "network_overhead": network},
        "paper": {"pair_overhead": 0.054, "network_overhead": 0.007},
        "table": render_kv(
            {
                "pair_overhead": pair,
                "network_overhead": network,
                "baseline_tile_area": base.total,
                "ari_tile_area": ari.total,
            }
        ),
    }


def ext_intensity_sweep(
    scale: str = "quick",
    base_benchmark: str = "hotspot",
    multipliers: Sequence[float] = (0.05, 0.15, 0.3, 0.6, 1.0),
    workers: Optional[int] = None,
) -> Dict:
    """Extension: ARI gain vs. memory-traffic intensity.

    The paper notes (Sec. 2.2) that techniques like cache bypassing or
    WarpPool change NoC traffic intensity, and that it approximates their
    effect by evaluating benchmarks of varying NoC sensitivity.  This sweep
    makes the relationship explicit: scale one benchmark's memory rate and
    plot the ARI speedup, exposing the crossover where the injection
    bottleneck starts to bind.

    The scaled profiles exist only in this process, so this driver runs
    in-process systems directly (no spec, no cache, no pool).
    """
    from dataclasses import replace as _replace

    from repro.core.schemes import scheme as _scheme
    from repro.gpu.config import GPUConfig
    from repro.gpu.system import GPGPUSystem
    from repro.workloads.suite import benchmark as _benchmark

    budget = _budget(scale)
    base_prof = _benchmark(base_benchmark)
    rows: Dict[str, Dict[str, float]] = {}
    for mult in multipliers:
        prof = _replace(
            base_prof,
            name=f"{base_benchmark}x{mult}",
            mem_rate=min(1.0, base_prof.mem_rate * mult),
        )
        ipcs = {}
        for sch in ("ada-baseline", "ada-ari"):
            system = GPGPUSystem(GPUConfig(), _scheme(sch), prof, seed=3)
            res = system.simulate(cycles=budget["cycles"], warmup=budget["warmup"])
            ipcs[sch] = res.ipc
        rows[f"x{mult}"] = {
            "ada-baseline": ipcs["ada-baseline"],
            "ada-ari": ipcs["ada-ari"],
            "gain": (
                ipcs["ada-ari"] / ipcs["ada-baseline"]
                if ipcs["ada-baseline"]
                else 0.0
            ),
        }
    return {
        "rows": rows,
        "summary": {k: v["gain"] for k, v in rows.items()},
        "paper": {
            "note": "not a paper figure; extension probing the Sec. 2.2 "
            "traffic-intensity approximation"
        },
        "table": render_grid(
            rows, ["ada-baseline", "ada-ari", "gain"], row_label="intensity"
        ),
    }


def ext_mc_placement(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Extension: MC placement study (Table I's "diamond" choice).

    The paper adopts the diamond placement of [Abts ISCA'09] "to make a
    competitive baseline".  This study compares it with the GPGPU-Sim-style
    top/bottom-edge layout and a deliberately concentrated center-column
    layout, under the XY baseline and under ARI — showing both that diamond
    is the strongest baseline and that ARI's win is not a placement
    artifact.
    """
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    placements = ["diamond", "edge", "column"]
    results = _run_indexed(
        {
            (pl, bm, sch): RunSpec(
                benchmark=bm, scheme=sch, mc_placement=pl, **budget
            )
            for pl in placements
            for bm in bms
            for sch in ("xy-baseline", "xy-ari")
        },
        workers,
    )
    rows: Dict[str, Dict[str, float]] = {}
    for pl in placements:
        base_vals = [results[(pl, bm, "xy-baseline")].ipc for bm in bms]
        ari_vals = [results[(pl, bm, "xy-ari")].ipc for bm in bms]
        rows[pl] = {
            "baseline_ipc": geometric_mean(base_vals),
            "ari_ipc": geometric_mean(ari_vals),
            "ari_gain": geometric_mean(
                [a / b for a, b in zip(ari_vals, base_vals) if b > 0]
            ),
        }
    return {
        "rows": rows,
        "summary": {pl: rows[pl]["ari_gain"] for pl in placements},
        "paper": {
            "note": "Table I uses diamond placement [Abts ISCA'09] for a "
            "competitive baseline; not a paper figure"
        },
        "table": render_grid(
            rows, ["baseline_ipc", "ari_ipc", "ari_gain"], row_label="placement"
        ),
    }


def ext_hop_latency(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    latencies: Sequence[int] = (1, 2, 3),
    workers: Optional[int] = None,
) -> Dict:
    """Extension: ARI's gain vs. router pipeline depth.

    The main model uses a single-cycle router (1 cycle/hop).  Deeper
    pipelines raise zero-load latency but do not change the injection
    bandwidth mismatch, so ARI's gain should persist — this sweep checks
    that the headline result is not an artifact of the 1-cycle router.
    """
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    results = _run_indexed(
        {
            (lat, bm, sch): RunSpec(
                benchmark=bm, scheme=sch, noc_hop_latency=lat, **budget
            )
            for lat in latencies
            for bm in bms
            for sch in ("ada-baseline", "ada-ari")
        },
        workers,
    )
    rows: Dict[str, Dict[str, float]] = {}
    for lat in latencies:
        gains = []
        for bm in bms:
            base = results[(lat, bm, "ada-baseline")]
            ari = results[(lat, bm, "ada-ari")]
            if base.ipc:
                gains.append(ari.ipc / base.ipc)
        rows[f"{lat}cyc/hop"] = {"ada-ari_gain": geometric_mean(gains)}
    return {
        "rows": rows,
        "summary": {k: v["ada-ari_gain"] for k, v in rows.items()},
        "paper": {"note": "not a paper figure; router-depth robustness check"},
        "table": render_grid(rows, ["ada-ari_gain"], row_label="hop latency"),
    }


def ext_warp_scheduler(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Extension: ARI under GTO vs. loose-round-robin warp scheduling.

    Table I fixes greedy-then-oldest; this sweep confirms the injection
    bottleneck (and ARI's fix) is not specific to that scheduler.
    """
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    results = _run_indexed(
        {
            (sched, bm, sch): RunSpec(
                benchmark=bm, scheme=sch, warp_scheduler=sched, **budget
            )
            for sched in ("gto", "lrr")
            for bm in bms
            for sch in ("ada-baseline", "ada-ari")
        },
        workers,
    )
    rows: Dict[str, Dict[str, float]] = {}
    for sched in ("gto", "lrr"):
        gains = []
        for bm in bms:
            base = results[(sched, bm, "ada-baseline")]
            ari = results[(sched, bm, "ada-ari")]
            if base.ipc:
                gains.append(ari.ipc / base.ipc)
        rows[sched] = {"ada-ari_gain": geometric_mean(gains)}
    return {
        "rows": rows,
        "summary": {k: v["ada-ari_gain"] for k, v in rows.items()},
        "paper": {"note": "not a paper figure; scheduler robustness check"},
        "table": render_grid(rows, ["ada-ari_gain"], row_label="scheduler"),
    }


def ext_request_side_ari(
    scale: str = "quick",
    benchmarks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> Dict:
    """Extension: does ARI on the *request* network help too?

    The paper applies ARI only to the reply side and leaves the request
    network untouched.  This ablation applies the full ARI structure to
    the CC-side request injectors as well — the expected (and measured)
    answer is "no further gain": request injection is dominated by
    single-flit read packets that a 1-flit/cycle link already sustains.
    """
    budget = _budget(scale)
    bms = _bms(scale, benchmarks)
    out = grid(
        bms, ["ada-baseline", "ada-ari", "ada-ari-both"], workers=workers, **budget
    )
    norm = normalized(out, "ipc", "ada-baseline")
    summary = {
        sch: geometric_mean([norm[bm][sch] for bm in bms])
        for sch in ("ada-ari", "ada-ari-both")
    }
    return {
        "rows": norm,
        "summary": summary,
        "paper": {
            "note": "implicit in the paper: only reply-side injection is "
            "the bottleneck; request-side ARI should add ~nothing"
        },
        "table": render_grid(norm, ["ada-baseline", "ada-ari", "ada-ari-both"]),
    }


ALL_FIGURES = {
    "fig3": fig3_request_vs_reply_latency,
    "fig4": fig4_link_width_sweep,
    "fig5": fig5_packet_type_mix,
    "fig6": fig6_queue_occupancy,
    "sec3_util": sec3_link_utilization,
    "fig9": fig9_priority_levels,
    "fig10": fig10_supply_consume_ablation,
    "fig11": fig11_scheme_comparison,
    "fig12": fig12_mc_stall_time,
    "fig13": fig13_latency_decomposition,
    "fig14": fig14_energy,
    "fig15": fig15_vc_sensitivity,
    "fig16": fig16_da2mesh,
    "sec75_scalability": sec75_scalability,
    "sec61_area": sec61_area,
    "ext_intensity": ext_intensity_sweep,
    "ext_placement": ext_mc_placement,
    "ext_hop_latency": ext_hop_latency,
    "ext_scheduler": ext_warp_scheduler,
    "ext_request_ari": ext_request_side_ari,
}
