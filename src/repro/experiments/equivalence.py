"""Kernel-equivalence harness: prove the activity kernel changes nothing.

The :class:`~repro.noc.kernel.ActivityKernel` promises *byte-identical*
results to the :class:`~repro.noc.kernel.ReferenceKernel` — same stats,
same per-router counters, same arbitration state.  This module checks
that promise end to end and powers ``repro check --kernel-equiv``:

* **network cases** — a synthetic-traffic grid (uniform many-to-many and
  the paper's few-to-many reply hotspot, under XY and minimal-adaptive
  routing, across NI kinds) run once per kernel; the diff covers the
  :class:`~repro.noc.stats.NetworkStats` summary *and* internal state
  (per-router switch/injection/starvation/decay counters and VA
  round-robin pointers, NI stats, per-link counters);
* **system cases** — full :class:`~repro.gpu.system.GPGPUSystem` runs
  over every main scheme, one fault-injection campaign cell, and one
  telemetry-instrumented run; the diff covers the whole
  :class:`~repro.gpu.system.SimulationResult` except the wall-clock
  extras (``build_wall_s``, ``sim_wall_s``, ``sim_cycles_per_sec``),
  which legitimately differ between runs.

Runs always bypass the result store: cache keys deliberately exclude the
kernel (byte-identity is the contract), so a cached record would
short-circuit the very comparison this harness exists to make.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import RunSpec

#: Wall-clock extras that differ run to run and are excluded from diffs.
WALL_CLOCK_EXTRAS = ("build_wall_s", "sim_wall_s", "sim_cycles_per_sec")

MAIN_SCHEMES = (
    "xy-baseline", "xy-ari", "ada-baseline", "ada-multiport", "ada-ari",
)


@dataclasses.dataclass
class CaseResult:
    """Outcome of one reference-vs-activity comparison."""

    name: str
    ok: bool
    diffs: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class EquivalenceReport:
    cases: List[CaseResult] = dataclasses.field(default_factory=list)

    @property
    def failures(self) -> List[CaseResult]:
        return [c for c in self.cases if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = []
        for case in self.cases:
            mark = "ok  " if case.ok else "FAIL"
            lines.append(f"{mark} {case.name}")
            for d in case.diffs[:8]:
                lines.append(f"       {d}")
            if len(case.diffs) > 8:
                lines.append(f"       ... and {len(case.diffs) - 8} more")
        lines.append(
            f"{len(self.cases)} case(s), {len(self.failures)} failure(s)"
        )
        return "\n".join(lines)


def _diff(ref: Dict, act: Dict, prefix: str = "") -> List[str]:
    """Recursive dict/value diff as ``path: ref != act`` strings."""
    out: List[str] = []
    if isinstance(ref, dict) and isinstance(act, dict):
        for k in sorted(set(ref) | set(act)):
            if k not in ref:
                out.append(f"{prefix}{k}: missing in reference")
            elif k not in act:
                out.append(f"{prefix}{k}: missing in activity")
            else:
                out.extend(_diff(ref[k], act[k], f"{prefix}{k}."))
        return out
    if ref != act:
        out.append(f"{prefix[:-1]}: ref={ref!r} act={act!r}")
    return out


# -- network-level cases -----------------------------------------------------

def network_snapshot(net) -> Dict[str, object]:
    """Deep observable state of a network after a run.

    Includes arbitration pointers, so the activity kernel must call
    ``sync()`` first (done here) to fast-forward sleeping routers.
    """
    sync = getattr(net.kernel, "sync", None)
    if sync is not None:
        sync(net)
    return {
        "cycles": net.now,
        "summary": net.stats.summary(),
        "offered": net.stats.packets_offered,
        "delivered": net.stats.packets_delivered,
        "routers": {
            str(r.router_id): [
                r.flits_switched, r.flits_injected, r.starvation_demotions,
                r.priority_decays, r.speedup_extra_flits, r._va_rr,
            ]
            for r in net.routers
        },
        "nis": {
            str(i): [
                ni.stats.flits_sent, ni.stats.packets_accepted,
                ni.stats.packets_rejected, ni.stats.occupancy_sum,
                ni.stats.occupancy_max, ni.stats.occupancy_samples,
            ]
            for i, ni in enumerate(net.nis)
        },
        "links": [
            [lk.flits_carried, lk.busy_cycles]
            for r in net.routers
            for lk in r.input_links
            if lk is not None and not hasattr(lk, "links")
        ],
    }


def _run_network_case(
    kernel: str,
    traffic: str,
    routing: str,
    ni_kind: str,
    mesh: int,
    rate: float,
    cycles: int,
) -> Dict[str, object]:
    from repro.noc import Network, NetworkConfig
    from repro.noc.ni import NIKind
    from repro.noc.topology import default_placement
    from repro.workloads.traffic import (
        ReplyTrafficPattern,
        SyntheticTrafficGenerator,
    )

    mcs, ccs = default_placement(mesh, mesh, max(2, mesh * mesh // 4))
    if traffic == "uniform":
        from repro.noc.flit import Packet, PacketType, packet_size_for

        srcs = list(range(mesh * mesh))

        class _Uniform(ReplyTrafficPattern):
            # Every node sends to every *other* node uniformly.
            def make_packet(self, src, now, priority=0):
                dest = self.rng.choice(self.cc_nodes)
                while dest == src:
                    dest = self.rng.choice(self.cc_nodes)
                if self.rng.random() < self.read_reply_fraction:
                    ptype = PacketType.READ_REPLY
                else:
                    ptype = PacketType.WRITE_REPLY
                size = packet_size_for(ptype, self.line_bytes, self.flit_bytes)
                return Packet(
                    ptype, src, dest, size, created_at=now, priority=priority
                )

        pattern = _Uniform(srcs, srcs, seed=2)
        accelerated = set(srcs)
    else:  # "hotspot": the paper's few-to-many reply pattern
        pattern = ReplyTrafficPattern(mcs, ccs, seed=2)
        accelerated = set(mcs)
    cfg = NetworkConfig(
        width=mesh,
        height=mesh,
        routing=routing,
        ni_kind=NIKind(ni_kind),
        accelerated_nodes=accelerated,
        priority_enabled=True,
        priority_levels=4,
        starvation_threshold=200,
        injection_speedup=2,
    )
    net = Network(cfg, kernel=kernel)
    gen = SyntheticTrafficGenerator(net, pattern, rate=rate, seed=3)
    gen.run(cycles)
    snap = network_snapshot(net)
    snap["gen"] = [gen.offered, gen.blocked, gen.stall_cycles]
    return snap


def network_cases(quick: bool = True) -> List[Tuple[str, Dict[str, object]]]:
    """(name, kwargs) grid for the network-level comparisons."""
    mesh = 4 if quick else 6
    cycles = 400 if quick else 1200
    ni_kinds = (
        ("enhanced", "multiport") if quick
        else ("baseline-narrow", "enhanced", "split", "multiport")
    )
    cases = []
    for traffic in ("uniform", "hotspot"):
        for routing in ("xy", "adaptive"):
            for ni_kind in ni_kinds:
                name = f"net/{traffic}/{routing}/{ni_kind}"
                cases.append((name, dict(
                    traffic=traffic, routing=routing, ni_kind=ni_kind,
                    mesh=mesh, rate=0.25, cycles=cycles,
                )))
    return cases


# -- system-level cases ------------------------------------------------------

def result_payload(result) -> Dict[str, object]:
    """A SimulationResult as a diffable dict, wall-clock extras removed."""
    payload = dataclasses.asdict(result)
    extras = dict(payload.get("extras", {}))
    for key in WALL_CLOCK_EXTRAS:
        extras.pop(key, None)
    payload["extras"] = extras
    return payload


def _run_system_case(spec: RunSpec, kernel: str) -> Dict[str, object]:
    from repro.experiments.executor import simulate_spec

    result = simulate_spec(replace(spec, kernel=kernel))
    return result_payload(result)


def _run_telemetry_case(spec: RunSpec, kernel: str) -> Dict[str, object]:
    from repro.experiments.api import run_live

    live = run_live(replace(spec, kernel=kernel), interval=50)
    payload = result_payload(live.result)
    payload["telemetry_samples"] = live.collector.samples_taken
    return payload


def system_cases(quick: bool = True) -> List[Tuple[str, RunSpec, bool]]:
    """(name, spec, telemetry) triples for the system-level comparisons."""
    cycles = 240 if quick else 800
    mesh = 4 if quick else 6
    base = RunSpec(
        benchmark="bfs", scheme="ada-ari",
        cycles=cycles, warmup=cycles // 4, mesh=mesh,
    )
    schemes = ("xy-baseline", "ada-ari") if quick else MAIN_SCHEMES
    cases: List[Tuple[str, RunSpec, bool]] = [
        (f"sys/{sch}/bfs", replace(base, scheme=sch), False)
        for sch in schemes
    ]
    # One fault-campaign cell: the activity kernel must fall back to
    # reference-order visiting and still match exactly.
    cases.append((
        "sys/ada-ari/bfs+faults",
        replace(base, faults="link:r1.E@40", fault_detour=True),
        False,
    ))
    # One telemetry-instrumented run: per-cycle sampling obligations must
    # fire on schedule in both kernels.
    cases.append(("sys/ada-ari/bfs+telemetry", base, True))
    return cases


# -- driver ------------------------------------------------------------------

def run_equivalence(
    quick: bool = True,
    progress=None,
) -> EquivalenceReport:
    """Run the full grid under both kernels and diff every observable."""
    report = EquivalenceReport()

    def record(name: str, ref: Dict, act: Dict) -> None:
        diffs = _diff(ref, act)
        report.cases.append(CaseResult(name=name, ok=not diffs, diffs=diffs))
        if progress is not None:
            progress(report.cases[-1])

    for name, kwargs in network_cases(quick):
        ref = _run_network_case("reference", **kwargs)
        act = _run_network_case("activity", **kwargs)
        record(name, ref, act)

    for name, spec, telemetry in system_cases(quick):
        if telemetry:
            ref = _run_telemetry_case(spec, "reference")
            act = _run_telemetry_case(spec, "activity")
        else:
            ref = _run_system_case(spec, "reference")
            act = _run_system_case(spec, "activity")
        record(name, ref, act)

    return report
