"""Config/host fingerprints and config diffs for provenance tracking.

A *fingerprint* is a short stable hash of an arbitrary JSON-able payload
(a :class:`~repro.experiments.runner.RunSpec`, a bench configuration, a
host description).  Two results are comparable when their fingerprints
match; when they differ, :func:`diff_config` names exactly which axes
moved — the input of perfwatch's driver analysis
(:mod:`repro.perfwatch.drivers`) and of any future A/B tooling.

Unlike :meth:`RunSpec.key`, which content-addresses the *result store*
and therefore must stay byte-stable across releases, these fingerprints
are a provenance convenience: they hash the flattened payload with
``None`` fields included, so adding a field to a spec changes its
fingerprint (which is exactly what driver analysis wants to see).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Mapping, Optional, Tuple

#: Marker used in diffs for an axis absent on one side.
ABSENT = "<absent>"


def flatten_config(payload: Mapping, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts/lists into dotted/indexed scalar leaves.

    ``{"a": {"b": 1}, "c": [2, 3]}`` becomes
    ``{"a.b": 1, "c[0]": 2, "c[1]": 3}``.  Scalars pass through; any
    non-JSON-native leaf is stringified so the result always serializes.
    """
    out: Dict[str, object] = {}
    for key, value in payload.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            out.update(flatten_config(value, name))
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                item_name = f"{name}[{i}]"
                if isinstance(item, Mapping):
                    out.update(flatten_config(item, item_name))
                else:
                    out[item_name] = _leaf(item)
        else:
            out[name] = _leaf(value)
    return out


def _leaf(value) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, stringified non-native leaves."""
    return json.dumps(payload, sort_keys=True, default=str)


def config_fingerprint(payload: Mapping, length: int = 12) -> str:
    """Short stable hash of a (possibly nested) configuration mapping."""
    blob = canonical_json(flatten_config(payload))
    return hashlib.sha1(blob.encode()).hexdigest()[:length]


def spec_fingerprint(spec, length: int = 12) -> str:
    """Fingerprint of a :class:`RunSpec` (all fields, ``None`` included)."""
    return config_fingerprint(dataclasses.asdict(spec), length=length)


def diff_config(
    old: Optional[Mapping], new: Optional[Mapping]
) -> Dict[str, Tuple[object, object]]:
    """Axes whose values differ between two configs: ``{axis: (old, new)}``.

    Both sides are flattened first, so nested configs diff leaf-by-leaf;
    an axis present on only one side reports :data:`ABSENT` for the
    other.  An empty dict means the configs are identical.
    """
    flat_old = flatten_config(old or {})
    flat_new = flatten_config(new or {})
    changed: Dict[str, Tuple[object, object]] = {}
    for axis in sorted(set(flat_old) | set(flat_new)):
        a = flat_old.get(axis, ABSENT)
        b = flat_new.get(axis, ABSENT)
        if a != b:
            changed[axis] = (a, b)
    return changed
