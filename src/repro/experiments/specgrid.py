"""Shared parsing for spec-grid command lines.

``repro sweep``, ``repro faults campaign`` and ``repro search`` all
accept repeated ``--axis``/``--space`` options of the form
``name=v1,v2,...`` naming :class:`~repro.experiments.runner.RunSpec`
fields; this module is the one place that syntax is parsed and
validated, so the commands cannot drift apart.

Values are coerced: ``none`` -> ``None``, ``true``/``false`` -> bool,
then int, then float, falling back to the raw string.  An integer range
shorthand ``lo..hi[:step]`` expands inclusively (``1..4`` -> 1,2,3,4;
``2..8:2`` -> 2,4,6,8; ``4..1`` counts down) and mixes freely with
plain tokens (``s=1..3,8``).  Axis names are checked against the
RunSpec schema up front so a typo fails before any simulation starts.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import RunSpec

SPEC_FIELDS = tuple(f.name for f in fields(RunSpec))


class SpecGridError(ValueError):
    """Malformed ``--axis`` text or an unknown RunSpec field."""


def coerce_value(token: str):
    """One axis token -> None/bool/int/float/str (first parse wins)."""
    low = token.lower()
    if low == "none":
        return None
    if low == "true":
        return True
    if low == "false":
        return False
    for conv in (int, float):
        try:
            return conv(token)
        except ValueError:
            continue
    return token


def expand_token(token: str) -> List[object]:
    """One axis token -> its value list; ``lo..hi[:step]`` ranges expand.

    A plain token coerces to a single value.  Ranges are integer-only
    and inclusive of ``hi`` when the step lands on it; a bare ``4..1``
    counts down (implicit step ``-1``).
    """
    if ".." not in token:
        return [coerce_value(token)]
    body, _, steptext = token.partition(":")
    lotext, _, hitext = body.partition("..")
    try:
        lo, hi = int(lotext), int(hitext)
        step = int(steptext) if steptext else (1 if hi >= lo else -1)
    except ValueError:
        raise SpecGridError(
            f"bad range {token!r}; expected integers lo..hi[:step]"
        )
    if step == 0 or (step > 0) != (hi >= lo):
        raise SpecGridError(
            f"range {token!r} never reaches {hi} with step {step}"
        )
    return list(range(lo, hi + (1 if step > 0 else -1), step))


def parse_axis(text: str) -> Tuple[str, List[object]]:
    """Parse one ``name=v1,v2,...`` option into ``(name, values)``."""
    name, _, values = text.partition("=")
    name = name.strip()
    if not name or not values:
        raise SpecGridError(
            f"bad --axis {text!r}; expected name=value[,value...]"
        )
    if name not in SPEC_FIELDS:
        raise SpecGridError(
            f"unknown RunSpec field {name!r} in --axis; "
            f"valid: {', '.join(SPEC_FIELDS)}"
        )
    toks = [t for t in values.split(",") if t != ""]
    if not toks:
        raise SpecGridError(f"--axis {text!r} has no values")
    out: List[object] = []
    for tok in toks:
        out.extend(expand_token(tok))
    return name, out


def parse_axes(texts: Sequence[str]) -> Dict[str, List[object]]:
    """Parse repeated ``--axis`` options; later repeats of a name win."""
    axes: Dict[str, List[object]] = {}
    for text in texts:
        name, values = parse_axis(text)
        axes[name] = values
    return axes


def parse_ints(text: str) -> Tuple[int, ...]:
    """``"1,2,3"`` -> ``(1, 2, 3)`` (used by --dead-links / --seeds)."""
    try:
        return tuple(int(tok) for tok in text.split(",") if tok)
    except ValueError:
        raise SpecGridError(
            f"expected comma-separated integers, got {text!r}"
        )
