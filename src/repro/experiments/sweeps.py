"""Cartesian parameter sweeps with CSV export.

``cartesian_sweep`` expands axes over :class:`~repro.experiments.runner.RunSpec`
fields, runs every combination (cached), and returns tidy records ready for
export — the "give me the whole design space as a spreadsheet" workflow:

    records = cartesian_sweep(
        RunSpec("bfs", "ada-ari", cycles=800, warmup=200),
        axes={"num_vcs": [2, 4], "injection_speedup": [1, 2, 4]},
    )
    write_csv(records, "vc_speedup_sweep.csv")
"""

from __future__ import annotations

import itertools
from dataclasses import fields, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.report import to_csv
from repro.experiments.runner import RunSpec, run_system

# Result metrics exported by default.
DEFAULT_METRICS = (
    "ipc",
    "mc_stall_per_reply",
    "request_latency",
    "reply_latency",
    "reply_traffic_share",
    "l2_hit_rate",
)

_SPEC_FIELDS = {f.name for f in fields(RunSpec)}


def cartesian_sweep(
    base: RunSpec,
    axes: Mapping[str, Sequence],
    metrics: Sequence[str] = DEFAULT_METRICS,
    use_cache: bool = True,
    progress=None,
) -> List[Dict[str, object]]:
    """Run every combination of the axes; returns one record per run.

    Each record contains the axis values plus the requested result metrics.
    ``progress(i, total, spec)`` is called before each run when given.
    """
    for name in axes:
        if name not in _SPEC_FIELDS:
            raise ValueError(
                f"unknown RunSpec field {name!r}; valid: {sorted(_SPEC_FIELDS)}"
            )
    names = list(axes)
    combos = list(itertools.product(*(axes[n] for n in names)))
    records: List[Dict[str, object]] = []
    for i, combo in enumerate(combos):
        overrides = dict(zip(names, combo))
        spec = replace(base, **overrides)
        if progress is not None:
            progress(i, len(combos), spec)
        result = run_system(spec, use_cache=use_cache)
        record: Dict[str, object] = dict(overrides)
        record["benchmark"] = spec.benchmark
        record["scheme"] = spec.scheme
        for m in metrics:
            record[m] = getattr(result, m)
        records.append(record)
    return records


def records_to_csv(records: Sequence[Mapping[str, object]]) -> str:
    """Render sweep records as CSV text (stable column order)."""
    if not records:
        return ""
    headers: List[str] = []
    for rec in records:
        for k in rec:
            if k not in headers:
                headers.append(k)
    rows = [[rec.get(h, "") for h in headers] for rec in records]
    return to_csv(headers, rows)


def write_csv(records: Sequence[Mapping[str, object]], path: str) -> None:
    with open(path, "w") as fh:
        fh.write(records_to_csv(records) + "\n")


def best_by(
    records: Sequence[Mapping[str, object]],
    metric: str = "ipc",
    maximize: bool = True,
) -> Optional[Mapping[str, object]]:
    """The record with the best value of ``metric``."""
    if not records:
        return None
    key = lambda r: r.get(metric, float("-inf") if maximize else float("inf"))
    return max(records, key=key) if maximize else min(records, key=key)
