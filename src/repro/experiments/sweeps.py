"""Cartesian parameter sweeps with CSV export.

The sweep engine itself now lives in :func:`repro.experiments.api.sweep`
(parallel, cached, retried); this module keeps the tidy-record export
helpers plus ``cartesian_sweep`` as a deprecated serial wrapper::

    from repro.experiments.api import sweep

    records = sweep(
        RunSpec("bfs", "ada-ari", cycles=800, warmup=200),
        axes={"num_vcs": [2, 4], "injection_speedup": [1, 2, 4]},
        workers=4,
    )
    write_csv(records, "vc_speedup_sweep.csv")
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.api import DEFAULT_METRICS
from repro.experiments.report import to_csv
from repro.experiments.runner import RunSpec


def cartesian_sweep(
    base: RunSpec,
    axes: Mapping[str, Sequence],
    metrics: Sequence[str] = DEFAULT_METRICS,
    use_cache: bool = True,
    progress=None,
) -> List[Dict[str, object]]:
    """Deprecated: use :func:`repro.experiments.api.sweep`.

    Runs serially (``workers=1``) and preserves the original
    ``progress(i, total, spec)`` callback signature.
    """
    warnings.warn(
        "cartesian_sweep() is deprecated; use repro.experiments.api.sweep()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import api

    wrapped = None
    if progress is not None:
        # api.sweep reports (done, total, spec, source) after each run;
        # serial order matches grid order, so done-1 is the old index.
        def wrapped(done, total, spec, source):
            progress(done - 1, total, spec)
    return api.sweep(
        base,
        axes,
        metrics=metrics,
        workers=1,
        use_cache=use_cache,
        progress=wrapped,
    )


def records_to_csv(records: Sequence[Mapping[str, object]]) -> str:
    """Render sweep records as CSV text (stable column order)."""
    if not records:
        return ""
    headers: List[str] = []
    for rec in records:
        for k in rec:
            if k not in headers:
                headers.append(k)
    rows = [[rec.get(h, "") for h in headers] for rec in records]
    return to_csv(headers, rows)


def write_csv(records: Sequence[Mapping[str, object]], path: str) -> None:
    with open(path, "w") as fh:
        fh.write(records_to_csv(records) + "\n")


def best_by(
    records: Sequence[Mapping[str, object]],
    metric: str = "ipc",
    maximize: bool = True,
) -> Optional[Mapping[str, object]]:
    """The record with the best value of ``metric``.

    Records that lack the metric are skipped (they used to be treated as
    +/-inf, which let them win or lose inconsistently); returns ``None``
    when no record carries it.
    """
    carrying = [r for r in records if metric in r]
    if not carrying:
        return None
    def key(r):
        return r[metric]

    return max(carrying, key=key) if maximize else min(carrying, key=key)
