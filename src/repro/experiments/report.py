"""Plain-text table rendering for experiment outputs.

The paper's figures are bar charts; we regenerate the underlying series as
aligned ASCII tables suitable for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    floatfmt: str = "{:.3f}",
) -> str:
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = [line(list(headers)), sep]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def render_kv(pairs: Mapping[str, object], floatfmt: str = "{:.4f}") -> str:
    width = max((len(k) for k in pairs), default=0)
    lines = []
    for k, v in pairs.items():
        if isinstance(v, float):
            v = floatfmt.format(v)
        lines.append(f"{k.ljust(width)}  {v}")
    return "\n".join(lines)


def to_markdown(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    floatfmt: str = "{:.3f}",
) -> str:
    """GitHub-flavoured markdown table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(out)


def to_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """RFC-4180-ish CSV (quotes fields containing commas/quotes)."""
    def fmt(cell: object) -> str:
        s = repr(cell) if isinstance(cell, float) else str(cell)
        if any(ch in s for ch in ",\"\n"):
            s = '"' + s.replace('"', '""') + '"'
        return s

    lines = [",".join(fmt(h) for h in headers)]
    lines.extend(",".join(fmt(c) for c in row) for row in rows)
    return "\n".join(lines)


def grid_rows(
    grid: Mapping[str, Mapping[str, float]],
    columns: Optional[Sequence[str]] = None,
) -> "tuple[List[str], List[List[object]]]":
    """Flatten a grid into (headers, rows) for the exporters above."""
    if columns is None:
        first = next(iter(grid.values()), {})
        columns = list(first)
    headers = ["name"] + list(columns)
    rows: List[List[object]] = [
        [name] + [vals.get(c, float("nan")) for c in columns]
        for name, vals in grid.items()
    ]
    return headers, rows


def render_grid(
    grid: Mapping[str, Mapping[str, float]],
    columns: Optional[Sequence[str]] = None,
    row_label: str = "benchmark",
    floatfmt: str = "{:.3f}",
    summary: Optional[Mapping[str, float]] = None,
    summary_label: str = "geomean",
) -> str:
    """Render ``grid[row][col] -> value`` with an optional summary row."""
    if columns is None:
        first = next(iter(grid.values()), {})
        columns = list(first)
    headers = [row_label] + list(columns)
    rows: List[List[object]] = []
    for bm, vals in grid.items():
        rows.append([bm] + [vals.get(c, float("nan")) for c in columns])
    if summary is not None:
        rows.append([summary_label] + [summary.get(c, float("nan")) for c in columns])
    return render_table(headers, rows, floatfmt=floatfmt)
