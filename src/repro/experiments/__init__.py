"""Experiment harness: one driver per paper table/figure.

``repro.experiments.api`` is the public execution surface — ``run`` /
``run_many`` / ``sweep`` / ``grid`` — backed by a process-pool
:class:`~repro.experiments.executor.SweepExecutor` and a per-run-file
:class:`~repro.experiments.store.ResultStore` (location from
``REPRO_CACHE``), so re-renders are free and multi-core hosts shard the
scheme x benchmark grid across workers.

``repro.experiments.figures`` exposes ``fig3`` ... ``fig16`` plus the
Section-3 characterization and Section-7.5 scalability studies.  All
drivers accept a ``scale`` knob (simulated cycles + benchmark subset)
and a ``workers`` knob, so the same code serves quick CI benches and the
longer EXPERIMENTS.md runs.  See docs/experiments.md.
"""

from repro.experiments import figures
from repro.experiments.api import (
    grid,
    run,
    run_live,
    run_many,
    sweep,
)
from repro.experiments.executor import ExecutionReport, ExecutorError, SweepExecutor
from repro.experiments.report import render_kv, render_table
from repro.experiments.runner import (
    RunSpec,
    cache_info,
    clear_cache,
    geometric_mean,
    run_system,  # deprecated wrapper
)
from repro.experiments.store import ResultStore, default_store, set_default_store

__all__ = [
    "RunSpec",
    "run",
    "run_live",
    "run_many",
    "sweep",
    "grid",
    "ResultStore",
    "default_store",
    "set_default_store",
    "SweepExecutor",
    "ExecutionReport",
    "ExecutorError",
    "run_system",
    "geometric_mean",
    "clear_cache",
    "cache_info",
    "figures",
    "render_table",
    "render_kv",
]
