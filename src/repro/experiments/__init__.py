"""Experiment harness: one driver per paper table/figure.

``repro.experiments.figures`` exposes ``fig3`` ... ``fig16`` plus the
Section-3 characterization and Section-7.5 scalability studies.  All
drivers accept a ``scale`` knob (simulated cycles + benchmark subset) so
the same code serves quick CI benches and the longer EXPERIMENTS.md runs.
Results are cached on disk (``results/cache.json``) keyed by the full
parameter set, so re-renders are free.
"""

from repro.experiments.runner import (
    RunSpec,
    run_system,
    sweep,
    geometric_mean,
    clear_cache,
    cache_info,
)
from repro.experiments import figures
from repro.experiments.report import render_table, render_kv

__all__ = [
    "RunSpec",
    "run_system",
    "sweep",
    "geometric_mean",
    "clear_cache",
    "cache_info",
    "figures",
    "render_table",
    "render_kv",
]
