"""Statistical analysis helpers: multi-seed runs and result comparison.

A single seed is one draw of the synthetic workload's request process;
claims like "ARI improves IPC by X%" deserve seed-replicated confidence.
``multi_seed`` replicates a :class:`~repro.experiments.runner.RunSpec`
across seeds; ``compare`` pairs two specs seed-by-seed (common random
numbers, so workload noise cancels) and reports the speedup distribution.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.api import run_many
from repro.experiments.runner import RunSpec, geometric_mean
from repro.gpu.system import SimulationResult


@dataclass
class SeedStats:
    """Mean / standard deviation / extrema of one metric across seeds."""

    metric: str
    values: List[float]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.n) if self.n else 0.0

    def ci95(self) -> float:
        """Half-width of an approximate 95% confidence interval."""
        return 1.96 * self.sem

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SeedStats({self.metric}: {self.mean:.3f} +/- {self.ci95():.3f},"
            f" n={self.n})"
        )


def multi_seed(
    spec: RunSpec,
    seeds: Sequence[int],
    metrics: Sequence[str] = ("ipc", "mc_stall_per_reply"),
    use_cache: bool = True,
    workers: Optional[int] = None,
) -> Dict[str, SeedStats]:
    """Run the spec once per seed; returns per-metric statistics."""
    if not seeds:
        raise ValueError("need at least one seed")
    specs = [replace(spec, seed=s) for s in seeds]
    results = run_many(specs, workers=workers, use_cache=use_cache)
    return {
        m: SeedStats(m, [float(getattr(r, m)) for r in results])
        for m in metrics
    }


def compare(
    base: RunSpec,
    test: RunSpec,
    seeds: Sequence[int],
    metric: str = "ipc",
    use_cache: bool = True,
    workers: Optional[int] = None,
) -> SeedStats:
    """Paired comparison with common random numbers.

    Each seed runs both specs; the per-seed ratio ``test/base`` removes the
    workload-draw noise the two runs share, giving a tight estimate of the
    scheme effect.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    specs = [replace(sp, seed=s) for s in seeds for sp in (base, test)]
    results = run_many(specs, workers=workers, use_cache=use_cache)
    ratios: List[float] = []
    for i in range(0, len(results), 2):
        rb, rt = results[i], results[i + 1]
        vb = float(getattr(rb, metric))
        if vb:
            ratios.append(float(getattr(rt, metric)) / vb)
    return SeedStats(f"{metric} ratio", ratios)


def significant_speedup(stats: SeedStats, threshold: float = 1.0) -> bool:
    """True when the 95% CI of the ratio sits fully above ``threshold``."""
    return stats.mean - stats.ci95() > threshold


def summarize_grid(
    grid: Dict[str, Dict[str, SimulationResult]],
    metric: str = "ipc",
) -> Dict[str, float]:
    """Geometric-mean of a metric per scheme over a benchmark x scheme grid."""
    schemes = set()
    for row in grid.values():
        schemes.update(row)
    out = {}
    for sch in sorted(schemes):
        vals = [
            float(getattr(row[sch], metric))
            for row in grid.values()
            if sch in row
        ]
        out[sch] = geometric_mean(vals)
    return out
