"""Content-addressed, per-run-file simulation result store.

Replaces the old module-global ``_memory_cache`` + monolithic
``results/cache.json`` pair: every cached run lives in its own file,
``<root>/<key[:2]>/<key>.json``, keyed by
:meth:`~repro.experiments.runner.RunSpec.key`.  Per-run files mean
parallel sweep workers (and independent host processes) never contend on
one JSON blob — the worst concurrent case is two processes atomically
replacing the *same* key with identical content.

The ``REPRO_CACHE`` environment variable still names the default store
location.  For backward compatibility it may point at a legacy
``cache.json`` file: the store then roots itself next to it (path minus
the ``.json`` suffix) and performs a one-shot import of the monolithic
cache into the sharded layout, recorded by a ``.legacy-imported`` marker
so the import never repeats.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterator, Optional

_DEFAULT_LOCATION = os.path.join(
    os.path.dirname(__file__), "..", "..", "..", "results", "cache.json"
)

_MIGRATION_MARKER = ".legacy-imported"


def coerce_record(record: dict):
    """Build a ``SimulationResult`` from a stored record, or ``None``.

    Records written before a result-schema change (fields added, renamed
    or removed) no longer construct; callers treat that as a cache miss
    and re-simulate instead of crashing on ``TypeError``.
    """
    from repro.gpu.system import SimulationResult

    try:
        return SimulationResult(**record)
    except TypeError:
        return None


class ResultStore:
    """Sharded on-disk store of run records with a write-through memory layer.

    ``location`` may be a directory (used as the store root) or a legacy
    ``*.json`` cache file (the root becomes the path without the suffix and
    the file is imported once).  When omitted, ``REPRO_CACHE`` or the
    repo-default ``results/cache.json`` decides.
    """

    def __init__(self, location: Optional[str] = None, *, migrate: bool = True):
        location = location or os.environ.get("REPRO_CACHE", _DEFAULT_LOCATION)
        location = os.path.abspath(location)
        if location.endswith(".json"):
            self.root = location[: -len(".json")]
            self.legacy_json = location
        else:
            self.root = location
            self.legacy_json = location + ".json"
        self._lock = threading.Lock()
        self._memory: Dict[str, dict] = {}
        if migrate:
            self.import_legacy()

    # -- paths -------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # -- read --------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """The record stored under ``key``, or ``None``."""
        with self._lock:
            hit = self._memory.get(key)
        if hit is not None:
            return hit
        try:
            with open(self._path(key)) as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        with self._lock:
            self._memory[key] = record
        return record

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return os.path.exists(self._path(key))

    def keys(self) -> Iterator[str]:
        """Every key present on disk or in memory (no load)."""
        seen = set()
        with self._lock:
            seen.update(self._memory)
        if os.path.isdir(self.root):
            for shard in sorted(os.listdir(self.root)):
                shard_dir = os.path.join(self.root, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if name.endswith(".json"):
                        seen.add(name[: -len(".json")])
        return iter(sorted(seen))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- write -------------------------------------------------------------
    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` (atomic per-key file replace).

        Disk failures are swallowed: losing one cache write is harmless
        (the run result is still returned) and must never kill a sweep.
        """
        with self._lock:
            self._memory[key] = record
        path = self._path(key)
        # pid+thread-unique temp name: concurrent writers (pool workers,
        # background sweeps) must not race on the same temp file.
        tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w") as fh:
                json.dump(record, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                if os.path.exists(tmp):
                    os.remove(tmp)
            except OSError:
                pass

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer; with ``disk=True`` also delete the files."""
        with self._lock:
            self._memory.clear()
        if disk and os.path.isdir(self.root):
            import shutil

            shutil.rmtree(self.root, ignore_errors=True)

    # -- harness hooks -----------------------------------------------------
    def preload(self, records: Dict[str, dict]) -> None:
        """Seed the memory layer without touching disk (test/bench harnesses)."""
        with self._lock:
            self._memory.update(records)

    def memory_snapshot(self) -> Dict[str, dict]:
        """Copy of the memory layer (test/bench harnesses)."""
        with self._lock:
            return dict(self._memory)

    # -- migration / introspection ----------------------------------------
    def import_legacy(self, json_path: Optional[str] = None) -> int:
        """One-shot import of a monolithic ``cache.json`` into the store.

        Returns the number of records imported; 0 when the legacy file is
        absent, unreadable, or already imported (marker present).
        """
        path = os.path.abspath(json_path or self.legacy_json)
        marker = os.path.join(self.root, _MIGRATION_MARKER)
        if os.path.exists(marker) or not os.path.exists(path):
            return 0
        try:
            with open(path) as fh:
                legacy = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return 0
        if not isinstance(legacy, dict):
            return 0
        imported = 0
        for key, record in legacy.items():
            if isinstance(record, dict) and self.get(key) is None:
                self.put(key, record)
                imported += 1
        try:
            os.makedirs(self.root, exist_ok=True)
            with open(marker, "w") as fh:
                fh.write(f"imported {imported} records from {path}\n")
        except OSError:
            pass
        return imported

    def scan_legacy(self) -> list:
        """Keys whose records no longer construct a ``SimulationResult``.

        These are stale pre-migration entries (or records from an older
        result schema); ``repro cache`` surfaces them as warnings, and
        the run paths silently treat them as misses.
        """
        bad = []
        for key in self.keys():
            record = self.get(key)
            if record is None or coerce_record(record) is None:
                bad.append(key)
        return bad

    def info(self) -> Dict[str, object]:
        return {
            "entries": len(self),
            "path": self.root,
            "legacy_json": self.legacy_json,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"ResultStore({self.root!r})"


# -- process-wide default ---------------------------------------------------

_DEFAULT: Optional[ResultStore] = None
_DEFAULT_LOCK = threading.Lock()


def default_store() -> ResultStore:
    """The lazily-created process-wide store (``REPRO_CACHE`` location)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = ResultStore()
        return _DEFAULT


def set_default_store(store: Optional[ResultStore]) -> Optional[ResultStore]:
    """Replace the process-wide default store; returns the previous one.

    Pass ``None`` to reset, so the next :func:`default_store` call
    re-derives the location from the environment.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        previous = _DEFAULT
        _DEFAULT = store
        return previous
