"""Run management: build a system for a (benchmark, scheme) pair, simulate,
cache the result, and aggregate.

The disk cache makes figure drivers compositional: Figs. 10-14 all consume
the same scheme x benchmark sweep, so the grid is simulated once.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import threading
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Sequence

from repro.core.schemes import Scheme, scheme as get_scheme
from repro.energy.gpuwattch import energy_per_work
from repro.gpu.config import GPUConfig
from repro.gpu.system import GPGPUSystem, SimulationResult
from repro.telemetry.profiler import HostProfiler
from repro.workloads.suite import benchmark as get_benchmark

_CACHE_LOCK = threading.Lock()
_CACHE_PATH = os.environ.get(
    "REPRO_CACHE", os.path.join(os.path.dirname(__file__), "..", "..", "..", "results", "cache.json")
)
_memory_cache: Dict[str, dict] = {}
_disk_loaded = False


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation run."""

    benchmark: str
    scheme: str
    cycles: int = 1500
    warmup: int = 400
    seed: int = 3
    mesh: int = 6
    num_vcs: Optional[int] = None
    ni_queue_flits: Optional[int] = None
    priority_levels: Optional[int] = None
    injection_speedup: Optional[int] = None
    num_split_queues: Optional[int] = None
    starvation_threshold: Optional[int] = None
    warps_per_core: Optional[int] = None
    mc_placement: Optional[str] = None
    warp_scheduler: Optional[str] = None
    noc_hop_latency: Optional[int] = None

    def key(self) -> str:
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha1(payload.encode()).hexdigest()[:20]


def _load_disk_cache() -> None:
    global _disk_loaded
    if _disk_loaded:
        return
    _disk_loaded = True
    path = os.path.abspath(_CACHE_PATH)
    if os.path.exists(path):
        try:
            with open(path) as fh:
                _memory_cache.update(json.load(fh))
        except (OSError, json.JSONDecodeError):
            pass


def _save_disk_cache() -> None:
    path = os.path.abspath(_CACHE_PATH)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    # pid-unique temp name: concurrent processes (e.g. a background sweep
    # plus an interactive session) must not race on the same temp file.
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w") as fh:
            json.dump(_memory_cache, fh)
        os.replace(tmp, path)
    except OSError:
        # Losing one cache write is harmless (the run result is still
        # returned); never let cache persistence kill a sweep.
        try:
            if os.path.exists(tmp):
                os.remove(tmp)
        except OSError:
            pass


def clear_cache(disk: bool = False) -> None:
    with _CACHE_LOCK:
        _memory_cache.clear()
        if disk:
            path = os.path.abspath(_CACHE_PATH)
            if os.path.exists(path):
                os.remove(path)


def cache_info() -> Dict[str, object]:
    with _CACHE_LOCK:
        _load_disk_cache()
        return {"entries": len(_memory_cache), "path": os.path.abspath(_CACHE_PATH)}


def _build_scheme(spec: RunSpec) -> Scheme:
    sch = get_scheme(spec.scheme)
    if spec.priority_levels is not None:
        sch = sch.with_priority_levels(spec.priority_levels)
    if spec.injection_speedup is not None:
        sch = sch.with_speedup(spec.injection_speedup)
    if spec.num_split_queues is not None:
        sch = sch.with_split_queues(spec.num_split_queues)
    if spec.starvation_threshold is not None:
        sch = sch.with_starvation_threshold(spec.starvation_threshold)
    return sch


def build_system(spec: RunSpec) -> GPGPUSystem:
    """Construct (but do not run) the system a spec describes."""
    overrides = {}
    if spec.warps_per_core is not None:
        overrides["warps_per_core"] = spec.warps_per_core
    if spec.mc_placement is not None:
        overrides["mc_placement"] = spec.mc_placement
    if spec.warp_scheduler is not None:
        overrides["warp_scheduler"] = spec.warp_scheduler
    if spec.noc_hop_latency is not None:
        overrides["noc_hop_latency"] = spec.noc_hop_latency
    config = GPUConfig.scaled(spec.mesh, **overrides)
    return GPGPUSystem(
        config,
        _build_scheme(spec),
        get_benchmark(spec.benchmark),
        seed=spec.seed,
        ni_queue_flits=spec.ni_queue_flits,
        num_vcs=spec.num_vcs,
    )


def run_system(spec: RunSpec, use_cache: bool = True) -> SimulationResult:
    """Simulate one spec (or fetch it from the cache).

    Fresh runs also record host-side profiling (build / simulate wall time
    and simulated cycles per second) in ``result.extras`` so every cached
    artifact carries the perf trajectory of the simulator itself.
    """
    key = spec.key()
    if use_cache:
        with _CACHE_LOCK:
            _load_disk_cache()
            hit = _memory_cache.get(key)
        if hit is not None:
            return SimulationResult(**hit)

    profiler = HostProfiler()
    with profiler.phase("build"):
        system = build_system(spec)
    with profiler.phase("measure"):
        result = system.simulate(cycles=spec.cycles, warmup=spec.warmup)
    profiler.count("cycles", spec.cycles + spec.warmup)
    # Attach the energy-model output (Fig. 14) while we still hold the system.
    ari_on = "ari" in spec.scheme
    result.extras["energy_per_instr"] = energy_per_work(system, ari_enabled=ari_on)
    result.extras["build_wall_s"] = profiler.phase_seconds("build")
    result.extras["sim_wall_s"] = profiler.phase_seconds("measure")
    result.extras["sim_cycles_per_sec"] = profiler.rate("cycles", "measure")

    if use_cache:
        with _CACHE_LOCK:
            _memory_cache[key] = dataclasses.asdict(result)
            _save_disk_cache()
    return result


def run_with_telemetry(
    spec: RunSpec,
    collector=None,
    interval: int = 100,
    jsonl_path: Optional[str] = None,
    csv_path: Optional[str] = None,
):
    """Simulate one spec with a telemetry collector attached.

    Telemetry needs a *live* run, so this never consults the result cache.
    Returns ``(result, collector, system)``; the collector always carries
    an in-memory sink (for rendering) plus optional JSONL/CSV artifact
    sinks, and its profiler times the build/measure phases.  Figure
    drivers and the ``repro telemetry`` CLI both sit on this entry point,
    so any experiment can emit a telemetry artifact next to its results.
    """
    from repro.telemetry import (
        CSVSink,
        JSONLSink,
        MemorySink,
        TelemetryCollector,
    )

    if collector is None:
        sinks = [MemorySink()]
        if jsonl_path:
            sinks.append(JSONLSink(jsonl_path))
        if csv_path:
            sinks.append(CSVSink(csv_path))
        collector = TelemetryCollector(interval=interval, sinks=sinks)
    profiler = collector.profiler
    with profiler.phase("build"):
        system = build_system(spec)
    system.attach_telemetry(collector)
    with profiler.phase("measure"):
        result = system.simulate(cycles=spec.cycles, warmup=spec.warmup)
    profiler.count("cycles", spec.cycles + spec.warmup)
    profiler.count(
        "packets",
        system.request_net.stats.packets_delivered
        + system.reply_net.stats.packets_delivered,
    )
    result.extras["sim_wall_s"] = profiler.phase_seconds("measure")
    result.extras["sim_cycles_per_sec"] = profiler.rate("cycles", "measure")
    collector.close()
    return result, collector, system


def sweep(
    benchmarks: Sequence[str],
    schemes: Sequence[str],
    use_cache: bool = True,
    **spec_kwargs,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run a benchmark x scheme grid; returns ``out[benchmark][scheme]``."""
    out: Dict[str, Dict[str, SimulationResult]] = {}
    for bm in benchmarks:
        out[bm] = {}
        for sch in schemes:
            out[bm][sch] = run_system(
                RunSpec(benchmark=bm, scheme=sch, **spec_kwargs),
                use_cache=use_cache,
            )
    return out


def geometric_mean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalized(
    grid: Dict[str, Dict[str, SimulationResult]],
    metric: str,
    baseline: str,
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark metric normalized to ``baseline``'s value."""
    out: Dict[str, Dict[str, float]] = {}
    for bm, row in grid.items():
        base = getattr(row[baseline], metric)
        out[bm] = {}
        for sch, res in row.items():
            val = getattr(res, metric)
            out[bm][sch] = (val / base) if base else 0.0
    return out
