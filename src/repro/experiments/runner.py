"""Run specification and system construction, plus aggregation helpers.

:class:`RunSpec` captures everything that determines one simulation run
(its ``key()`` content-addresses the result store), and
:func:`build_system` turns a spec into a ready-to-run
:class:`~repro.gpu.system.GPGPUSystem`.

Execution moved to :mod:`repro.experiments.api` (cached single runs,
parallel batches, design-space sweeps) on top of
:mod:`repro.experiments.executor` and the per-run-file
:class:`~repro.experiments.store.ResultStore`.  The old entry points —
``run_system``, ``run_with_telemetry``, ``sweep`` — remain here as thin
deprecated wrappers for one release.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.core.schemes import Scheme, scheme as get_scheme
from repro.gpu.config import GPUConfig
from repro.gpu.system import GPGPUSystem, SimulationResult
from repro.workloads.suite import benchmark as get_benchmark


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation run."""

    benchmark: str
    scheme: str
    cycles: int = 1500
    warmup: int = 400
    seed: int = 3
    mesh: int = 6
    num_vcs: Optional[int] = None
    ni_queue_flits: Optional[int] = None
    priority_levels: Optional[int] = None
    injection_speedup: Optional[int] = None
    num_split_queues: Optional[int] = None
    starvation_threshold: Optional[int] = None
    warps_per_core: Optional[int] = None
    mc_placement: Optional[str] = None
    warp_scheduler: Optional[str] = None
    noc_hop_latency: Optional[int] = None
    # Fault-injection plan in the repro.faults DSL (None = subsystem not
    # loaded at all); fault_detour toggles detour routing for faulted runs.
    faults: Optional[str] = None
    fault_detour: Optional[bool] = None
    # Simulation kernel backend ("reference"/"activity", see
    # repro.noc.kernel); None defers to the REPRO_KERNEL env var.
    kernel: Optional[str] = None
    # Telemetry sampling interval in cycles.  A set value routes
    # api.run() through run_live() — the run is live and never cached.
    telemetry: Optional[int] = None

    def key(self) -> str:
        payload = dataclasses.asdict(self)
        # Fields introduced after the store went content-addressed are
        # dropped while unset, so every pre-existing cache key survives.
        for name in ("faults", "fault_detour", "telemetry"):
            if payload[name] is None:
                del payload[name]
        # Kernels are byte-identical by contract (the kernel-equivalence
        # suite enforces it), so the backend never partitions the cache.
        del payload["kernel"]
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha1(blob.encode()).hexdigest()[:20]


def _build_scheme(spec: RunSpec) -> Scheme:
    sch = get_scheme(spec.scheme)
    if spec.priority_levels is not None:
        sch = sch.with_priority_levels(spec.priority_levels)
    if spec.injection_speedup is not None:
        sch = sch.with_speedup(spec.injection_speedup)
    if spec.num_split_queues is not None:
        sch = sch.with_split_queues(spec.num_split_queues)
    if spec.starvation_threshold is not None:
        sch = sch.with_starvation_threshold(spec.starvation_threshold)
    return sch


def build_system(spec: RunSpec) -> GPGPUSystem:
    """Construct (but do not run) the system a spec describes."""
    overrides = {}
    if spec.warps_per_core is not None:
        overrides["warps_per_core"] = spec.warps_per_core
    if spec.mc_placement is not None:
        overrides["mc_placement"] = spec.mc_placement
    if spec.warp_scheduler is not None:
        overrides["warp_scheduler"] = spec.warp_scheduler
    if spec.noc_hop_latency is not None:
        overrides["noc_hop_latency"] = spec.noc_hop_latency
    config = GPUConfig.scaled(spec.mesh, **overrides)
    return GPGPUSystem(
        config,
        _build_scheme(spec),
        get_benchmark(spec.benchmark),
        seed=spec.seed,
        ni_queue_flits=spec.ni_queue_flits,
        num_vcs=spec.num_vcs,
        # Key-irrelevant by construction: kernel selection is proven
        # byte-equivalent by the kernellint rules plus the kernel
        # equivalence suite, so the cached payload cannot depend on it.
        kernel=spec.kernel,  # taint: sanitize(spec.kernel)
    )


# -- cache control (over the default ResultStore) ---------------------------

def clear_cache(disk: bool = False) -> None:
    """Drop the default store's memory layer (and files with ``disk=True``)."""
    from repro.experiments.store import default_store

    default_store().clear(disk=disk)


def cache_info() -> Dict[str, object]:
    """Entry count and location of the default result store."""
    from repro.experiments.store import default_store

    return default_store().info()


# -- deprecated wrappers (kept for one release) -----------------------------

def run_system(spec: RunSpec, use_cache: bool = True) -> SimulationResult:
    """Deprecated: use :func:`repro.experiments.api.run`."""
    warnings.warn(
        "run_system() is deprecated; use repro.experiments.api.run()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import api

    return api.run(spec, use_cache=use_cache)


def run_with_telemetry(
    spec: RunSpec,
    collector=None,
    interval: int = 100,
    jsonl_path: Optional[str] = None,
    csv_path: Optional[str] = None,
):
    """Deprecated: use :func:`repro.experiments.api.run_live`.

    Returns ``(result, collector, system)`` like the original.
    """
    warnings.warn(
        "run_with_telemetry() is deprecated; "
        "use repro.experiments.api.run_live()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import api

    live = api.run_live(
        spec,
        collector=collector,
        interval=interval,
        jsonl_path=jsonl_path,
        csv_path=csv_path,
    )
    return live.result, live.collector, live.system


def sweep(
    benchmarks: Sequence[str],
    schemes: Sequence[str],
    use_cache: bool = True,
    **spec_kwargs,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Deprecated: use :func:`repro.experiments.api.grid`."""
    warnings.warn(
        "runner.sweep() is deprecated; use repro.experiments.api.grid()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments import api

    return api.grid(benchmarks, schemes, use_cache=use_cache, **spec_kwargs)


# -- aggregation ------------------------------------------------------------

def geometric_mean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalized(
    grid: Dict[str, Dict[str, SimulationResult]],
    metric: str,
    baseline: str,
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark metric normalized to ``baseline``'s value."""
    out: Dict[str, Dict[str, float]] = {}
    for bm, row in grid.items():
        base = getattr(row[baseline], metric)
        out[bm] = {}
        for sch, res in row.items():
            val = getattr(res, metric)
            out[bm][sch] = (val / base) if base else 0.0
    return out
