"""Degradation campaigns: how gracefully does each scheme lose links?

A campaign fans a grid of fault intensities (numbers of dead reply-mesh
links) across schemes and seeds, running every cell through
:func:`repro.experiments.api.run_many` — so cells run in parallel across
workers and land in the shared result cache exactly like any sweep.  Per
intensity the same seeded link cut is used for every scheme (a fair
comparison: ARI and the baseline lose the *same* links).

The output is a :class:`DegradationReport`: delivered fraction, reply
latency and its inflation over the scheme's own zero-fault cell, drop
counts, first-deadlock cycles, and invariant violations caught by the
per-cycle :class:`~repro.noc.validation.InvariantChecker` audit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.report import render_table
from repro.experiments.runner import RunSpec
from repro.faults.model import FaultPlan


@dataclass(frozen=True)
class CampaignConfig:
    """One degradation campaign: schemes x fault intensities x seeds."""

    benchmark: str = "bfs"
    schemes: Sequence[str] = ("xy-baseline", "ada-ari")
    dead_links: Sequence[int] = (0, 1, 2)
    seeds: Sequence[int] = (3,)
    cycles: int = 600
    warmup: int = 200
    mesh: int = 4
    fault_seed: int = 7          # picks *which* links die (same for all schemes)
    fault_cycle: int = 0         # onset cycle of every link fault
    duration: Optional[int] = None  # None = permanent faults
    detour: bool = True
    check_invariants: Optional[str] = "collect"
    # Simulation kernel backend for every cell (see repro.noc.kernel).
    # Faulted cells fall back to reference-order visiting internally, so
    # this mainly speeds up the zero-fault baseline cells.
    kernel: Optional[str] = None
    # Extra RunSpec axes (name, values) applied as a cartesian product to
    # every cell; axis points aggregate into their (scheme, dead_links)
    # row exactly like extra seeds.  Parsed from repeated ``--axis``
    # options by repro.experiments.specgrid.
    axes: Sequence[Tuple[str, Sequence[object]]] = ()

    def plan_for(self, n_dead: int) -> FaultPlan:
        if n_dead == 0:
            return FaultPlan()
        return FaultPlan.random_links(
            n_dead,
            self.mesh,
            self.mesh,
            seed=self.fault_seed,
            cycle=self.fault_cycle,
            duration=self.duration,
        )


@dataclass
class DegradationReport:
    """Aggregated campaign outcome; one row per (scheme, dead links)."""

    benchmark: str
    config: Dict[str, object]
    rows: List[Dict[str, object]] = field(default_factory=list)

    COLUMNS = (
        "scheme",
        "dead_links",
        "delivered_fraction",
        "reply_latency",
        "latency_inflation",
        "dropped",
        "first_deadlock_cycle",
        "invariant_violations",
    )

    def row(self, scheme: str, dead_links: int) -> Optional[Dict[str, object]]:
        for r in self.rows:
            if r["scheme"] == scheme and r["dead_links"] == dead_links:
                return r
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "config": self.config,
            "rows": self.rows,
        }

    def render(self) -> str:
        body = [[r.get(c, "") for c in self.COLUMNS] for r in self.rows]
        for row in body:
            if row[6] is None:
                row[6] = "-"  # never deadlocked
        return render_table(list(self.COLUMNS), body)


class CampaignRunner:
    """Builds the spec grid for a :class:`CampaignConfig` and runs it."""

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config

    # -- spec construction ---------------------------------------------------
    def specs(self) -> List[Tuple[str, int, int, RunSpec]]:
        """(scheme, n_dead, seed, spec) per cell, in report order.

        Zero-fault cells use ``faults=None`` (not an empty plan), so their
        records — and cache keys — are exactly those of an ordinary run.
        """
        cfg = self.config
        overrides: List[Dict[str, object]] = [{}]
        for name, values in cfg.axes:
            overrides = [
                {**combo, name: v} for combo in overrides for v in values
            ]
        out: List[Tuple[str, int, int, RunSpec]] = []
        for scheme in cfg.schemes:
            for n_dead in cfg.dead_links:
                plan = cfg.plan_for(n_dead)
                faults = plan.format() if not plan.empty else None
                for seed in cfg.seeds:
                    for combo in overrides:
                        kwargs: Dict[str, object] = dict(
                            benchmark=cfg.benchmark,
                            scheme=scheme,
                            cycles=cfg.cycles,
                            warmup=cfg.warmup,
                            seed=seed,
                            mesh=cfg.mesh,
                            faults=faults,
                            fault_detour=(
                                cfg.detour if faults is not None else None
                            ),
                            kernel=cfg.kernel,
                        )
                        kwargs.update(combo)  # axis values win
                        out.append((scheme, n_dead, seed, RunSpec(**kwargs)))
        return out

    # -- execution -----------------------------------------------------------
    def run(
        self,
        *,
        workers: Optional[int] = None,
        store=None,
        use_cache: bool = True,
        progress=None,
    ) -> DegradationReport:
        from repro.experiments import api

        cfg = self.config
        cells = self.specs()
        results = api.run_many(
            [spec for (_, _, _, spec) in cells],
            workers=workers,
            store=store,
            use_cache=use_cache,
            progress=progress,
            check_invariants=cfg.check_invariants,
        )

        # Group cells (scheme, n_dead) -> list of results over seeds.
        grouped: Dict[Tuple[str, int], List] = {}
        for (scheme, n_dead, _seed, _spec), result in zip(cells, results):
            grouped.setdefault((scheme, n_dead), []).append(result)

        def mean(values: Sequence[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        report = DegradationReport(
            benchmark=cfg.benchmark,
            config={
                **dataclasses.asdict(cfg),
                "schemes": list(cfg.schemes),
                "dead_links": list(cfg.dead_links),
                "seeds": list(cfg.seeds),
            },
        )
        base_latency: Dict[str, float] = {}
        for scheme in cfg.schemes:
            for n_dead in cfg.dead_links:
                batch = grouped.get((scheme, n_dead), [])
                delivered = mean(
                    [r.extras.get("delivered_fraction", 1.0) for r in batch]
                )
                latency = mean([r.reply_latency for r in batch])
                if n_dead == 0 or scheme not in base_latency:
                    base_latency.setdefault(scheme, latency)
                base = base_latency[scheme]
                deadlocks = [
                    int(r.extras["first_deadlock_cycle"])
                    for r in batch
                    if "first_deadlock_cycle" in r.extras
                ]
                report.rows.append(
                    {
                        "scheme": scheme,
                        "dead_links": n_dead,
                        "delivered_fraction": delivered,
                        "reply_latency": latency,
                        "latency_inflation": (latency / base) if base else 0.0,
                        "dropped": int(
                            sum(r.extras.get("fault_drops_total", 0.0) for r in batch)
                        ),
                        "first_deadlock_cycle": (
                            min(deadlocks) if deadlocks else None
                        ),
                        "invariant_violations": int(
                            sum(
                                r.extras.get("invariant_violations", 0.0)
                                for r in batch
                            )
                        ),
                        "ipc": mean([r.ipc for r in batch]),
                    }
                )
        return report


def run_campaign(
    config: CampaignConfig,
    *,
    workers: Optional[int] = None,
    store=None,
    use_cache: bool = True,
    progress=None,
) -> DegradationReport:
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(config).run(
        workers=workers, store=store, use_cache=use_cache, progress=progress
    )
