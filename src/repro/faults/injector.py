"""Seeded fault injection against a live :class:`~repro.noc.network.Network`.

The injector is installed as ``network.faults`` and runs at the *start* of
``Network.step`` — before NIs and routers move anything — so a resource is
never allocated in the same cycle it dies.  Fault semantics are
"admin down": dead resources stop accepting **new** packet allocations,
while anything already streaming drains completely.  That keeps every
flow-control invariant (credits, writer locks, WPF non-interleaving)
intact across fault and repair events, which the
:class:`~repro.noc.validation.InvariantChecker` verifies during campaigns.

An installed injector also pins the simulation kernel: while any fault
epoch is active the activity kernel (:mod:`repro.noc.kernel`) falls back
to reference-order visiting for the cycle, so fault campaigns are always
cycle-exact regardless of ``kernel=``.

Mechanisms:

* **Dead links** enter :class:`FaultState`; route lookups made through
  :class:`~repro.noc.routing.FaultAwareRouting` detour around them by
  strictly-decreasing BFS distance on the live graph.  Each dead link's
  downstream VCs are fenced by pinning the output writer locks with
  :data:`~repro.noc.router.FAULT_PID` (deferred while a real packet is
  mid-stream), so the ordinary WPF claim check rejects them with no new
  hot-path code.
* **Dead NI queues** stop accepting and starting packets
  (``ni.dead_queues``); a stranded front packet is retried with
  timeout/backoff — relocated to a live split queue when the NI supports
  it, dropped after ``max_retries`` otherwise.
* **Doomed packets** (unreachable destination, or — with detours
  disabled — a deterministic route into a dead link) are purged from
  router buffers after a grace period, returning their buffer credits
  upstream; unreachable destinations are also written off at offer time
  so producers never wedge.
* **Starvation safety**: a through-traffic VC that waits *because of a
  fault* gets its wait clock refreshed, so ARI's starvation demotion
  keeps protecting against priority starvation instead of firing on
  every fault stall.

With an empty plan the injector applies no events, every scan guard
short-circuits, and :class:`FaultAwareRouting` delegates verbatim — a
network with an empty plan simulates identically to one without the
subsystem loaded (enforced by the zero-perturbation test).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.faults.model import FaultEvent, FaultKind, FaultPlan, validate_plan
from repro.noc.buffer import VCState
from repro.noc.network import Network
from repro.noc.ni import SplitNI
from repro.noc.router import FAULT_PID
from repro.noc.routing import LOCAL, FaultAwareRouting, opposite


@dataclass(frozen=True)
class RetryPolicy:
    """NI-side retry for packets stranded on a failed injection queue."""

    timeout: int = 32       # cycles before the first retry
    backoff: float = 2.0    # delay multiplier per failed attempt
    max_retries: int = 4    # relocation attempts before dropping

    def delay(self, attempt: int) -> int:
        return max(1, int(self.timeout * (self.backoff ** attempt)))


class FaultState:
    """Live-graph view shared with :class:`FaultAwareRouting`.

    ``dead_links`` holds (router, direction) pairs; per-destination BFS
    distances over the surviving links are cached and invalidated on
    every fault/repair event.
    """

    def __init__(self, topology) -> None:
        self.topology = topology
        self.dead_links: Set[Tuple[int, int]] = set()
        self._dist: Dict[int, List[float]] = {}

    @property
    def active(self) -> bool:
        return bool(self.dead_links)

    def link_ok(self, router: int, direction: int) -> bool:
        return (router, direction) not in self.dead_links

    def invalidate(self) -> None:
        self._dist.clear()

    def distance(self, router: int, dest: int) -> float:
        dist = self._dist.get(dest)
        if dist is None:
            dist = self._bfs(dest)
            self._dist[dest] = dist
        return dist[router]

    def reachable(self, router: int, dest: int) -> bool:
        return self.distance(router, dest) != math.inf

    def _bfs(self, dest: int) -> List[float]:
        topo = self.topology
        dist = [math.inf] * topo.num_routers
        dist[dest] = 0.0
        frontier = [dest]
        while frontier:
            nxt: List[int] = []
            for v in frontier:
                dv = dist[v] + 1
                # Edge u -> v uses u's output facing v, i.e. opposite(d)
                # where d is v's direction toward u.
                for d, u in topo.neighbors(v).items():
                    if dist[u] <= dv or not self.link_ok(u, opposite(d)):
                        continue
                    dist[u] = dv
                    nxt.append(u)
            frontier = nxt
        return dist


class FaultStats:
    """Counters the injector maintains (``fault.*`` telemetry source)."""

    __slots__ = (
        "events_applied",
        "repairs_applied",
        "drops_source",
        "drops_purged",
        "drops_niq",
        "relocations",
        "retries",
        "route_caches_cleared",
        "wait_refreshes",
    )

    def __init__(self) -> None:
        self.events_applied = 0
        self.repairs_applied = 0
        self.drops_source = 0
        self.drops_purged = 0
        self.drops_niq = 0
        self.relocations = 0
        self.retries = 0
        self.route_caches_cleared = 0
        self.wait_refreshes = 0

    @property
    def drops_total(self) -> int:
        return self.drops_source + self.drops_purged + self.drops_niq

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class FaultInjector:
    """Applies a :class:`FaultPlan` to one network and keeps it resilient."""

    def __init__(
        self,
        network: Network,
        plan: FaultPlan,
        detour: bool = True,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        validate_plan(plan, network.topology, network.config.num_vcs)
        self.network = network
        self.plan = plan
        self.detour = detour
        self.retry = retry if retry is not None else RetryPolicy()
        self.state = FaultState(network.topology)
        self.stats = FaultStats()
        self._coords = network.topology.coords
        # Event queues: pending faults ordered by onset, repairs by due cycle.
        self._pending: List[FaultEvent] = sorted(
            plan.events, key=lambda e: e.cycle, reverse=True
        )
        self._repairs: List[Tuple[int, int, FaultEvent]] = []
        self._repair_seq = 0
        # Writer-lock pinning bookkeeping: reference counts per output VC
        # (a link fault and a VC fault may overlap), plus VCs whose pin is
        # deferred until the in-flight packet finishes streaming.
        self._pin_counts: Dict[Tuple[int, int, int], int] = {}
        self._deferred_pins: Set[Tuple[int, int, int]] = set()
        self._link_counts: Dict[Tuple[int, int], int] = {}
        # NI retry state: (node, queue) -> [next_attempt_cycle, attempts].
        self._niq_retry: Dict[Tuple[int, int], List[int]] = {}
        # Stuck-packet grace timers: (router, port, vc) -> (pid, since).
        self._stuck: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        self._installed = False

    # -- installation --------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Wrap routing (when detouring) and hook into the network."""
        if self._installed:
            return self
        if self.detour:
            wrapped = FaultAwareRouting(
                self.network.routing, self.network.topology, self.state
            )
            self.network.routing = wrapped
            for router in self.network.routers:
                router.routing = wrapped
        self.network.faults = self
        self._installed = True
        return self

    # -- per-cycle hook (start of Network.step) ------------------------------
    def on_cycle(self, now: int) -> None:
        changed = False
        while self._pending and self._pending[-1].cycle <= now:
            event = self._pending.pop()
            self._apply(event, now)
            changed = True
        while self._repairs and self._repairs[0][0] <= now:
            _, _, event = heapq.heappop(self._repairs)
            self._repair(event)
            changed = True
        if changed:
            self.state.invalidate()
            self._clear_route_caches()
        if self._deferred_pins:
            self._settle_deferred_pins()
        if self._niq_retry:
            self._service_dead_queues(now)
        if self.state.active:
            self._scan_stuck_packets(now)

    # -- offer-time interception --------------------------------------------
    def intercept_offer(self, node: int, packet) -> bool:
        """True when the packet should be written off at the source.

        Lost-reply semantics: the producer's send succeeds so the workload
        keeps running, and ``delivered_fraction`` records the loss.
        """
        if self.state.active and not self.state.reachable(node, packet.dest):
            self.stats.drops_source += 1
            return True
        dq = self.network.nis[node].dead_queues
        if dq is not None and len(dq) >= self._queue_count(node):
            # Every injection queue at this node is dead.
            self.stats.drops_source += 1
            return True
        return False

    # -- event application ---------------------------------------------------
    def _apply(self, e: FaultEvent, now: int) -> None:
        if e.kind == FaultKind.LINK:
            self._kill_link(e.router, e.direction)
        elif e.kind == FaultKind.PORT:
            up, out_dir = self._feeding_link(e.router, e.direction)
            self._kill_link(up, out_dir)
        elif e.kind == FaultKind.VC:
            self._pin(e.router, e.direction, e.vc)
        elif e.kind == FaultKind.NIQ:
            self._kill_niq(e.router, e.queue, now)
        self.stats.events_applied += 1
        if e.duration is not None:
            self._repair_seq += 1
            heapq.heappush(
                self._repairs, (e.repair_cycle, self._repair_seq, e)
            )

    def _repair(self, e: FaultEvent) -> None:
        if e.kind == FaultKind.LINK:
            self._revive_link(e.router, e.direction)
        elif e.kind == FaultKind.PORT:
            up, out_dir = self._feeding_link(e.router, e.direction)
            self._revive_link(up, out_dir)
        elif e.kind == FaultKind.VC:
            self._unpin(e.router, e.direction, e.vc)
        elif e.kind == FaultKind.NIQ:
            self._revive_niq(e.router, e.queue)
        self.stats.repairs_applied += 1

    def _feeding_link(self, router: int, direction: int) -> Tuple[int, int]:
        """The (upstream router, output direction) feeding an input port."""
        upstream = self.network.topology.neighbors(router)[direction]
        return upstream, opposite(direction)

    def _kill_link(self, router: int, direction: int) -> None:
        # Reference-counted: overlapping transient faults on one link are
        # legal; the link revives when the last one repairs.
        key = (router, direction)
        count = self._link_counts.get(key, 0)
        self._link_counts[key] = count + 1
        for vc in range(self.network.config.num_vcs):
            self._pin(router, direction, vc)
        if count:
            return
        self.state.dead_links.add(key)
        self.network.routers[router].output_ports[direction].link.failed = True

    def _revive_link(self, router: int, direction: int) -> None:
        key = (router, direction)
        count = self._link_counts.get(key, 0) - 1
        for vc in range(self.network.config.num_vcs):
            self._unpin(router, direction, vc)
        if count > 0:
            self._link_counts[key] = count
            return
        self._link_counts.pop(key, None)
        self.state.dead_links.discard(key)
        self.network.routers[router].output_ports[direction].link.failed = False

    def _pin(self, router: int, direction: int, vc: int) -> None:
        key = (router, direction, vc)
        count = self._pin_counts.get(key, 0)
        self._pin_counts[key] = count + 1
        if count:
            return  # already pinned (or pending) for another fault
        out = self.network.routers[router].output_ports[direction]
        if out.writer[vc] is None:
            out.writer[vc] = FAULT_PID
            out.writer_left[vc] = 1
        else:
            # A real packet is mid-stream; admin-down lets it finish.
            self._deferred_pins.add(key)

    def _unpin(self, router: int, direction: int, vc: int) -> None:
        key = (router, direction, vc)
        count = self._pin_counts.get(key, 0) - 1
        if count > 0:
            self._pin_counts[key] = count
            return
        self._pin_counts.pop(key, None)
        if key in self._deferred_pins:
            self._deferred_pins.discard(key)
            return
        out = self.network.routers[router].output_ports[direction]
        if out.writer[vc] == FAULT_PID:
            out.writer[vc] = None
            out.writer_left[vc] = 0

    def _settle_deferred_pins(self) -> None:
        # Runs before routers allocate, so a writer freed last cycle is
        # pinned before anything new can claim it.
        for key in list(self._deferred_pins):
            router, direction, vc = key
            out = self.network.routers[router].output_ports[direction]
            if out.writer[vc] is None:
                out.writer[vc] = FAULT_PID
                out.writer_left[vc] = 1
                self._deferred_pins.discard(key)

    def _kill_niq(self, node: int, queue: int, now: int) -> None:
        ni = self.network.nis[node]
        if queue >= self._queue_count(node):
            raise ValueError(
                f"node {node} NI has no injection queue {queue}"
            )
        if ni.dead_queues is None:
            ni.dead_queues = set()
        ni.dead_queues.add(queue)
        self._niq_retry[(node, queue)] = [now + self.retry.timeout, 0]

    def _revive_niq(self, node: int, queue: int) -> None:
        ni = self.network.nis[node]
        if ni.dead_queues is not None:
            ni.dead_queues.discard(queue)
            if not ni.dead_queues:
                ni.dead_queues = None  # restore the zero-overhead fast path
        self._niq_retry.pop((node, queue), None)

    def _queue_count(self, node: int) -> int:
        ni = self.network.nis[node]
        return ni.num_queues if isinstance(ni, SplitNI) else 1

    # -- cache hygiene -------------------------------------------------------
    def _clear_route_caches(self) -> None:
        """Drop cached route candidates computed against the old topology."""
        for router in self.network.routers:
            for port in router.input_ports:
                if port.occ == 0:
                    continue
                for vc in port.vcs:
                    if vc.state == VCState.ROUTING and vc.candidates is not None:
                        vc.candidates = None
                        vc.escape = None
        self.stats.route_caches_cleared += 1

    # -- NI retry/backoff ----------------------------------------------------
    def _service_dead_queues(self, now: int) -> None:
        policy = self.retry
        for (node, qi), st in list(self._niq_retry.items()):
            ni = self.network.nis[node]
            if ni.dead_queues is None or qi not in ni.dead_queues:
                self._niq_retry.pop((node, qi), None)
                continue
            depths = ni.queue_depths()
            if qi >= len(depths) or depths[qi] == 0:
                st[0], st[1] = now + policy.timeout, 0
                continue
            if now < st[0]:
                continue
            if isinstance(ni, SplitNI) and ni.relocate_queue_front(qi, now):
                self.stats.relocations += 1
                st[0], st[1] = now + policy.timeout, 0
                continue
            st[1] += 1
            self.stats.retries += 1
            if st[1] > policy.max_retries:
                pkt = ni.drop_queue_front(qi, now)
                if pkt is not None:
                    self.network.stats.on_drop(pkt)
                    self.stats.drops_niq += 1
                st[0], st[1] = now + policy.timeout, 0
            else:
                st[0] = now + policy.delay(st[1])

    # -- stuck-packet scan ---------------------------------------------------
    def _scan_stuck_packets(self, now: int) -> None:
        state = self.state
        grace = self.retry.timeout * (self.retry.max_retries + 1)
        for router in self.network.routers:
            rid = router.router_id
            for port in router.input_ports:
                if port.occ == 0:
                    continue
                for vc in port.vcs:
                    if vc.state != VCState.ROUTING or not vc.fifo:
                        continue
                    head = vc.fifo[0]
                    if not head.is_head:
                        continue
                    pkt = head.packet
                    blocked = not state.reachable(rid, pkt.dest)
                    if not blocked and not self.detour:
                        # Deterministic routing may insist on dead links.
                        cands = router.routing.candidates(
                            router.coords, self._coords(pkt.dest)
                        )
                        blocked = all(
                            c != LOCAL and not state.link_ok(rid, c)
                            for c in cands
                        )
                    key = (rid, port.port_id, vc.index)
                    if not blocked:
                        self._stuck.pop(key, None)
                        continue
                    entry = self._stuck.get(key)
                    if entry is None or entry[0] != pkt.pid:
                        self._stuck[key] = (pkt.pid, now)
                    elif now - entry[1] > grace:
                        purged = router.purge_front_packet(
                            port.port_id, vc.index, now
                        )
                        if purged is not None:
                            self.network.stats.on_drop(purged)
                            self.stats.drops_purged += 1
                            self._stuck.pop(key, None)
                            continue
                    # A fault-caused wait must not look like priority
                    # starvation to the injection-bid demotion logic.
                    if not port.is_injection and vc.wait_since is not None:
                        vc.wait_since = now
                        self.stats.wait_refreshes += 1

    # -- reporting -----------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Flat numeric summary for ``SimulationResult.extras``."""
        out = {f"fault_{k}": float(v) for k, v in self.stats.as_dict().items()}
        out["fault_dead_links"] = float(len(self.state.dead_links))
        return out


class FaultProbe:
    """``fault.*`` telemetry channels for one (or two) injectors."""

    def __init__(self, injectors: Sequence[FaultInjector], prefix: str = "fault"):
        self.injectors = list(injectors)
        self.prefix = prefix
        self._prev: Dict[str, int] = {}

    def _delta(self, name: str, cumulative: int) -> int:
        prev = self._prev.get(name, 0)
        self._prev[name] = cumulative
        return cumulative - prev

    def collect(self, now: int) -> Dict[str, object]:
        p = self.prefix
        dead_links = sum(len(i.state.dead_links) for i in self.injectors)
        dead_queues = sum(
            len(ni.dead_queues)
            for i in self.injectors
            for ni in i.network.nis
            if ni.dead_queues is not None
        )
        stats = [i.stats for i in self.injectors]
        return {
            f"{p}.dead_links": dead_links,
            f"{p}.dead_ni_queues": dead_queues,
            f"{p}.events_applied": sum(s.events_applied for s in stats),
            f"{p}.repairs_applied": sum(s.repairs_applied for s in stats),
            f"{p}.drops": self._delta(
                "drops", sum(s.drops_total for s in stats)
            ),
            f"{p}.relocations": self._delta(
                "reloc", sum(s.relocations for s in stats)
            ),
            f"{p}.retries": self._delta(
                "retries", sum(s.retries for s in stats)
            ),
        }


def install_faults(
    network: Network,
    plan: FaultPlan,
    detour: bool = True,
    retry: Optional[RetryPolicy] = None,
) -> FaultInjector:
    """Create and install an injector on one network."""
    return FaultInjector(network, plan, detour=detour, retry=retry).install()


def install_system_faults(
    system,
    plan: FaultPlan,
    detour: bool = True,
    retry: Optional[RetryPolicy] = None,
) -> Dict[str, FaultInjector]:
    """Install per-network injectors on a GPGPU system.

    Events route to the physical network named by their ``net`` field.
    Returns ``{"req": injector, "rep": injector}``.  Overlay reply fabrics
    (DA2mesh) have no mesh routers to fault and are rejected.
    """
    if not isinstance(system.reply_net, Network):
        raise ValueError(
            "fault injection needs a mesh reply network; "
            f"{type(system.reply_net).__name__} is an overlay fabric"
        )
    return {
        "req": install_faults(
            system.request_net, plan.for_net("req"), detour=detour, retry=retry
        ),
        "rep": install_faults(
            system.reply_net, plan.for_net("rep"), detour=detour, retry=retry
        ),
    }
