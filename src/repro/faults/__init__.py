"""repro.faults — fault injection, resilient routing, degradation campaigns.

Turns the simulator into a resilience-evaluation platform: a
:class:`FaultPlan` schedules transient/permanent faults on mesh links,
router input ports, individual VCs, and NI split queues; a seeded
:class:`FaultInjector` mutates the live network between cycles while
detour routing, NI retry/backoff, and starvation-safe priority handling
keep traffic flowing; a :class:`CampaignRunner` fans fault-intensity
grids across schemes and emits a :class:`DegradationReport`.

See ``docs/faults.md`` for the fault model and DSL, and
``repro faults --help`` for the campaign CLI.
"""

from repro.faults.campaign import (
    CampaignConfig,
    CampaignRunner,
    DegradationReport,
    run_campaign,
)
from repro.faults.injector import (
    FaultInjector,
    FaultProbe,
    FaultState,
    FaultStats,
    RetryPolicy,
    install_faults,
    install_system_faults,
)
from repro.faults.model import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    describe,
    parse_event,
    validate_plan,
)

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "describe",
    "parse_event",
    "validate_plan",
    "FaultInjector",
    "FaultProbe",
    "FaultState",
    "FaultStats",
    "RetryPolicy",
    "install_faults",
    "install_system_faults",
    "CampaignConfig",
    "CampaignRunner",
    "DegradationReport",
    "run_campaign",
]
