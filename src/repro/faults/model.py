"""Fault model: what breaks, where, and when.

A :class:`FaultPlan` is an ordered set of :class:`FaultEvent` objects, each
describing one fault on one resource of one physical network:

``link``
    A mesh output link: ``link:r5.E`` kills router 5's East output.  The
    link stops accepting *new* packet allocations (admin-down semantics);
    a packet already streaming through drains completely, so flow-control
    state never corrupts mid-wormhole.
``port``
    A router *input* port: ``port:r5.W`` is shorthand for killing the
    upstream link that feeds router 5's West input (its West neighbour's
    East output).
``vc``
    One virtual channel of an output link: ``vc:r5.E.2`` pins VC 2 of
    router 5's East output; the other VCs keep the link alive, so routing
    does not detour.
``niq``
    One NI injection queue: ``niq:r3.1`` kills split queue 1 of node 3's
    NI (queue 0 for single-queue NIs).  Stranded packets follow the
    retry/relocate/drop policy of the injector.

Events are scheduled by cycle and are *transient* when they carry a
duration (``@100+50`` = fault at cycle 100, repair at 150) or *permanent*
without one (``@100``).  An optional ``req:`` / ``rep:`` prefix selects
the physical network (default: the reply network, where the paper's
bottleneck lives).

The textual DSL round-trips through :meth:`FaultPlan.parse` /
:meth:`FaultPlan.format`, which is how a plan rides inside a
:class:`~repro.experiments.runner.RunSpec` (a plain string keeps specs
hashable, picklable, and content-addressable).
"""

from __future__ import annotations

import enum
import random
import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.noc.routing import DIRECTION_NAMES
from repro.noc.topology import MeshTopology

_DIR_BY_NAME = {name: d for d, name in DIRECTION_NAMES.items() if name != "L"}

#: Physical networks a fault can target.
NETS = ("req", "rep")


class FaultKind(enum.Enum):
    LINK = "link"
    PORT = "port"
    VC = "vc"
    NIQ = "niq"


_TOKEN_RE = re.compile(
    r"^(?:(?P<net>req|rep):)?"
    r"(?P<kind>link|port|vc|niq):"
    r"(?P<target>[rR]\d+(?:\.[NESWnesw0-9]+)+)"
    r"@(?P<cycle>\d+)"
    r"(?:\+(?P<duration>\d+))?$"
)


@dataclass(frozen=True)
class FaultEvent:
    """One fault on one resource, scheduled by cycle."""

    kind: FaultKind
    router: int                     # router id (node id for NIQ faults)
    cycle: int
    direction: Optional[int] = None  # link/port/vc faults
    vc: Optional[int] = None         # vc faults
    queue: Optional[int] = None      # niq faults
    duration: Optional[int] = None   # None = permanent
    net: str = "rep"

    def __post_init__(self) -> None:
        if self.net not in NETS:
            raise ValueError(f"net must be one of {NETS}, got {self.net!r}")
        if self.cycle < 0:
            raise ValueError("fault cycle must be >= 0")
        if self.duration is not None and self.duration < 1:
            raise ValueError("fault duration must be >= 1 cycle")
        if self.kind in (FaultKind.LINK, FaultKind.PORT, FaultKind.VC):
            if self.direction is None or not 0 <= self.direction <= 3:
                raise ValueError(f"{self.kind.value} fault needs a mesh direction")
        if self.kind == FaultKind.VC and (self.vc is None or self.vc < 0):
            raise ValueError("vc fault needs a VC index")
        if self.kind == FaultKind.NIQ and (self.queue is None or self.queue < 0):
            raise ValueError("niq fault needs a queue index")

    @property
    def repair_cycle(self) -> Optional[int]:
        return None if self.duration is None else self.cycle + self.duration

    def target(self) -> str:
        if self.kind == FaultKind.NIQ:
            return f"r{self.router}.{self.queue}"
        d = DIRECTION_NAMES[self.direction]
        if self.kind == FaultKind.VC:
            return f"r{self.router}.{d}.{self.vc}"
        return f"r{self.router}.{d}"

    def token(self) -> str:
        """Canonical DSL token (parse/format round-trip)."""
        tail = f"@{self.cycle}"
        if self.duration is not None:
            tail += f"+{self.duration}"
        prefix = "" if self.net == "rep" else f"{self.net}:"
        return f"{prefix}{self.kind.value}:{self.target()}{tail}"


def parse_event(token: str) -> FaultEvent:
    """Parse one ``[net:]kind:target@cycle[+duration]`` token."""
    token = token.strip()
    m = _TOKEN_RE.match(token)
    if m is None:
        raise ValueError(
            f"bad fault token {token!r} "
            "(expected [req:|rep:]kind:rN.TARGET@cycle[+duration], "
            "e.g. link:r5.E@100+50 or niq:r3.1@0)"
        )
    kind = FaultKind(m.group("kind"))
    net = m.group("net") or "rep"
    cycle = int(m.group("cycle"))
    duration = int(m.group("duration")) if m.group("duration") else None
    parts = m.group("target").lstrip("rR").split(".")
    router = int(parts[0])
    direction = vc = queue = None
    fields = parts[1:]
    if kind == FaultKind.NIQ:
        if len(fields) != 1 or not fields[0].isdigit():
            raise ValueError(f"niq target must be rN.Q, got {token!r}")
        queue = int(fields[0])
    else:
        if not fields or fields[0].upper() not in _DIR_BY_NAME:
            raise ValueError(
                f"{kind.value} target needs a direction N/E/S/W: {token!r}"
            )
        direction = _DIR_BY_NAME[fields[0].upper()]
        if kind == FaultKind.VC:
            if len(fields) != 2 or not fields[1].isdigit():
                raise ValueError(f"vc target must be rN.DIR.VC, got {token!r}")
            vc = int(fields[1])
        elif len(fields) != 1:
            raise ValueError(f"{kind.value} target must be rN.DIR, got {token!r}")
    return FaultEvent(
        kind=kind,
        router=router,
        cycle=cycle,
        direction=direction,
        vc=vc,
        queue=queue,
        duration=duration,
        net=net,
    )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, cycle-ordered collection of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.cycle, e.token())))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def empty(self) -> bool:
        return not self.events

    def for_net(self, net: str) -> "FaultPlan":
        return FaultPlan(tuple(e for e in self.events if e.net == net))

    def format(self) -> str:
        """Canonical DSL string; ``parse(plan.format()) == plan``."""
        return ";".join(e.token() for e in self.events)

    @classmethod
    def parse(cls, text: Optional[str]) -> "FaultPlan":
        """Parse a ``;``-joined DSL string (None/empty -> empty plan)."""
        if not text or not text.strip():
            return cls()
        return cls(tuple(parse_event(t) for t in text.split(";") if t.strip()))

    @classmethod
    def random_links(
        cls,
        count: int,
        width: int,
        height: int,
        seed: int,
        cycle: int = 0,
        duration: Optional[int] = None,
        net: str = "rep",
        exclude: Sequence[Tuple[int, int]] = (),
    ) -> "FaultPlan":
        """``count`` distinct dead mesh links, drawn reproducibly by seed.

        The draw is over the directed links of a ``width x height`` mesh;
        ``exclude`` removes (router, direction) pairs from the pool (e.g.
        to keep a cut away from a specific MC).  Campaign grids use this
        so "2 dead links" means the same two links for every scheme.
        """
        topo = MeshTopology(width, height)
        pool = [
            (src, direction)
            for src, direction, _dst in topo.links()
            if (src, direction) not in set(exclude)
        ]
        if count > len(pool):
            raise ValueError(
                f"cannot pick {count} links from a pool of {len(pool)}"
            )
        rng = random.Random(seed)
        picks = rng.sample(pool, count)
        return cls(
            tuple(
                FaultEvent(
                    kind=FaultKind.LINK,
                    router=src,
                    direction=direction,
                    cycle=cycle,
                    duration=duration,
                    net=net,
                )
                for src, direction in picks
            )
        )


def validate_plan(plan: FaultPlan, topology: MeshTopology, num_vcs: int) -> None:
    """Check every event names a resource that exists on ``topology``."""
    n = topology.num_routers
    for e in plan.events:
        if not 0 <= e.router < n:
            raise ValueError(
                f"{e.token()}: router {e.router} not in mesh ({n} routers)"
            )
        if e.kind == FaultKind.NIQ:
            continue  # queue count is NI-specific; checked at install time
        neighbors = topology.neighbors(e.router)
        if e.kind == FaultKind.PORT:
            if e.direction not in neighbors:
                raise ValueError(
                    f"{e.token()}: router {e.router} has no input from "
                    f"{DIRECTION_NAMES[e.direction]} (mesh edge)"
                )
        elif e.direction not in neighbors:
            raise ValueError(
                f"{e.token()}: router {e.router} has no "
                f"{DIRECTION_NAMES[e.direction]} output link (mesh edge)"
            )
        if e.kind == FaultKind.VC and e.vc >= num_vcs:
            raise ValueError(f"{e.token()}: VC {e.vc} >= num_vcs {num_vcs}")


def describe(plan: FaultPlan) -> List[str]:
    """Human-readable one-liners, one per event (CLI helper)."""
    out = []
    for e in plan.events:
        life = "permanent" if e.duration is None else f"for {e.duration} cycles"
        out.append(
            f"{e.net} net: {e.kind.value} fault on {e.target()} "
            f"at cycle {e.cycle} ({life})"
        )
    return out
