"""Set-associative cache with LRU replacement (used for both L1 and L2).

Addresses are line-granular throughout the GPU model (a "line address" is
``byte_address // line_bytes``), so the cache indexes directly on line
addresses.  Writes are write-through / no-write-allocate for the L1 (the
GPGPU-Sim default for global stores) and write-back-less for the L2 — the
simulator does not track dirty data since no functional values flow, only
timing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List


class CacheStats:
    __slots__ = ("hits", "misses", "writes", "write_hits")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.write_hits = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        acc = self.accesses
        return self.hits / acc if acc else 0.0


class Cache:
    """A ``size_bytes`` cache of ``line_bytes`` lines, ``assoc``-way LRU."""

    def __init__(self, size_bytes: int, line_bytes: int, assoc: int) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or assoc <= 0:
            raise ValueError("cache geometry must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines < assoc:
            raise ValueError("cache smaller than one set")
        self.num_sets = max(1, num_lines // assoc)
        self.assoc = assoc
        self.line_bytes = line_bytes
        # Each set: OrderedDict mapping line_addr -> True, LRU at the front.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _set_for(self, line_addr: int) -> OrderedDict:
        return self._sets[line_addr % self.num_sets]

    # ------------------------------------------------------------------
    def lookup(self, line_addr: int) -> bool:
        """Read probe: updates LRU and stats; True on hit."""
        s = self._set_for(line_addr)
        if line_addr in s:
            s.move_to_end(line_addr)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def probe(self, line_addr: int) -> bool:
        """Stateless presence check (no LRU or stats update)."""
        return line_addr in self._set_for(line_addr)

    def fill(self, line_addr: int) -> None:
        """Install a line, evicting LRU if the set is full."""
        s = self._set_for(line_addr)
        if line_addr in s:
            s.move_to_end(line_addr)
            return
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line_addr] = True

    def write(self, line_addr: int) -> bool:
        """Write-through probe: True if the line was present (updated)."""
        self.stats.writes += 1
        s = self._set_for(line_addr)
        if line_addr in s:
            s.move_to_end(line_addr)
            self.stats.write_hits += 1
            return True
        return False

    def invalidate(self, line_addr: int) -> bool:
        s = self._set_for(line_addr)
        return s.pop(line_addr, None) is not None

    def flush(self) -> None:
        for s in self._sets:
            s.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
