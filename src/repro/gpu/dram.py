"""GDDR5 DRAM channel with bank timing and FR-FCFS scheduling.

The channel operates in *memory-clock* cycles (1.75x the NoC clock,
Table I).  Eight banks share a command bus (one command per cycle) and a
data bus.  The FR-FCFS scheduler services row-buffer hits first, then the
oldest request, which is the policy named in Table I.

Timing (all in memory cycles):

* row hit:       ``tCL`` to first data, then ``burst`` cycles on the bus;
* row closed:    ``tRCD + tCL`` (+ activate constraints ``tRRD``/``tRC``);
* row conflict:  precharge first (respecting ``tRAS``), then as closed.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.gpu.config import GDDR5TimingParams


class DRAMRequest:
    __slots__ = (
        "line_addr", "is_write", "cookie", "enqueued_at", "completed_at",
        "needed_act",
    )

    def __init__(self, line_addr: int, is_write: bool, cookie: object = None) -> None:
        self.line_addr = line_addr
        self.is_write = is_write
        self.cookie = cookie
        self.enqueued_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        self.needed_act = False

    def __repr__(self) -> str:  # pragma: no cover
        rw = "W" if self.is_write else "R"
        return f"DRAMRequest({rw} line={self.line_addr:#x})"


class _Bank:
    __slots__ = ("open_row", "ready_at", "activated_at", "last_activate")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.ready_at = 0            # next cycle this bank may take a command
        self.activated_at = -(10**9)  # when the open row was activated

    def __repr__(self) -> str:  # pragma: no cover
        return f"Bank(row={self.open_row}, ready_at={self.ready_at})"


class GDDR5Timing:
    """Derived timing helpers for a :class:`GDDR5TimingParams`."""

    def __init__(self, params: GDDR5TimingParams, line_bytes: int = 128) -> None:
        params.validate()
        self.p = params
        self.burst = max(1, line_bytes // params.bus_bytes_per_cycle)
        self.columns_per_row = 16  # 2 KB row / 128 B line

    def bank_of(self, line_addr: int) -> int:
        return line_addr % self.p.num_banks

    def row_of(self, line_addr: int) -> int:
        return (line_addr // self.p.num_banks) // self.columns_per_row


class DRAMChannel:
    """One GDDR5 channel behind a memory controller."""

    def __init__(
        self,
        params: GDDR5TimingParams,
        line_bytes: int = 128,
        queue_depth: int = 32,
    ) -> None:
        self.timing = GDDR5Timing(params, line_bytes)
        self.queue_depth = queue_depth
        self.queue: List[DRAMRequest] = []
        self.banks = [_Bank() for _ in range(params.num_banks)]
        self.bus_free_at = 0
        self.last_activate_any = -(10**9)
        self.now = 0  # memory-clock cycles
        self._completions: List[Tuple[int, int, DRAMRequest]] = []  # heap
        self._completion_seq = 0
        # Stats
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.requests_served = 0
        self.busy_cycles = 0
        self.refreshes = 0
        self._refresh_until = 0
        self._next_refresh = (
            self.timing.p.tREFI if self.timing.p.tREFI > 0 else None
        )

    # -- queue ----------------------------------------------------------
    @property
    def full(self) -> bool:
        return len(self.queue) >= self.queue_depth

    def enqueue(self, req: DRAMRequest) -> bool:
        if self.full:
            return False
        req.enqueued_at = self.now
        self.queue.append(req)
        return True

    @property
    def pending(self) -> int:
        return len(self.queue) + len(self._completions)

    # -- scheduling -------------------------------------------------------
    #
    # The controller issues one DRAM command per memory cycle (shared
    # command bus), advancing each request incrementally through
    # PRE -> ACT -> CAS exactly when the timing constraints allow.  FR-FCFS:
    # CAS-ready row hits are served first (oldest first); otherwise the
    # oldest request whose bank can take its next command gets it.

    def _cas(self, idx: int) -> None:
        """Issue the column access for queue[idx]; completes the request."""
        t = self.timing
        p = t.p
        req = self.queue.pop(idx)
        bank = self.banks[t.bank_of(req.line_addr)]
        now = self.now
        data_start = max(now + p.tCL, self.bus_free_at)
        data_end = data_start + t.burst
        self.bus_free_at = data_end
        bank.ready_at = now + t.burst  # CAS-to-CAS gap on the same bank
        req.completed_at = data_end
        self._completion_seq += 1
        heapq.heappush(self._completions, (data_end, self._completion_seq, req))
        self.requests_served += 1
        if not req.needed_act:
            self.row_hits += 1

    def _try_command(self) -> bool:
        """Issue at most one command this cycle; True if one was issued."""
        t = self.timing
        p = t.p
        now = self.now
        # CAS is only worth issuing if the data bus isn't booked too far out
        # (one burst of slack keeps the bus saturated without overcommit).
        bus_ok = self.bus_free_at <= now + p.tCL + t.burst

        # Pass 1 (first-ready): oldest row hit whose bank can take the CAS.
        if bus_ok:
            for i, req in enumerate(self.queue):
                bank = self.banks[t.bank_of(req.line_addr)]
                if (
                    bank.open_row == t.row_of(req.line_addr)
                    and bank.ready_at <= now
                ):
                    self._cas(i)
                    return True

        # Pass 2 (first-come): advance the oldest request that needs its
        # bank prepared (precharge or activate).
        touched_banks = set()
        for req in self.queue:
            b = t.bank_of(req.line_addr)
            if b in touched_banks:
                continue  # an older request owns this bank's next command
            touched_banks.add(b)
            bank = self.banks[b]
            row = t.row_of(req.line_addr)
            if bank.open_row == row:
                continue  # waiting for CAS (bus or bank gap); nothing to do
            if bank.ready_at > now:
                continue
            if bank.open_row is None:
                # Activate, honoring tRRD (any bank) and tRC (same bank).
                if (
                    self.last_activate_any + p.tRRD <= now
                    and bank.activated_at + p.tRC <= now
                ):
                    bank.open_row = row
                    bank.activated_at = now
                    bank.ready_at = now + p.tRCD
                    self.last_activate_any = now
                    self.row_misses += 1
                    req.needed_act = True
                    return True
            else:
                # Row conflict: precharge, honoring tRAS.
                if bank.activated_at + p.tRAS <= now:
                    bank.open_row = None
                    bank.ready_at = now + p.tRP
                    self.row_conflicts += 1
                    return True
        return False

    def step_mem_cycle(self) -> List[DRAMRequest]:
        """Advance one memory-clock cycle; return requests whose data is done."""
        if self._next_refresh is not None and self.now >= self._next_refresh:
            # All-bank refresh: close every row and block for tRFC.
            p = self.timing.p
            for bank in self.banks:
                bank.open_row = None
                bank.ready_at = max(bank.ready_at, self.now + p.tRFC)
            self._refresh_until = self.now + p.tRFC
            self._next_refresh += p.tREFI
            self.refreshes += 1
        refreshing = self.now < self._refresh_until
        if self.queue and not refreshing:
            self.busy_cycles += 1
            self._try_command()
        self.now += 1
        done: List[DRAMRequest] = []
        while self._completions and self._completions[0][0] <= self.now:
            done.append(heapq.heappop(self._completions)[2])
        return done

    @property
    def row_hit_rate(self) -> float:
        tot = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / tot if tot else 0.0
