"""Memory-controller node: L2 bank + GDDR5 channel + reply injection.

This is the right-hand side of Fig. 2: request packets eject from the
request network into the MC's bounded input buffer; reads probe the L2 bank
and miss into the GDDR5 channel; ready reply data waits in the MC output
queue for the reply-network NI — and every cycle the head of that queue is
blocked because the NI injection queue is full counts toward the *data
stall time in MC* metric of Fig. 12.

Backpressure chain (the "parking lot" of Sec. 3): reply NI full -> MC
output queue fills -> MC stops processing requests -> MC input buffer
fills -> request-network ejection stalls -> request routers back up toward
the cores.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.gpu.cache import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.dram import DRAMChannel, DRAMRequest
from repro.noc.flit import Packet, PacketType


class MCStats:
    __slots__ = (
        "reads",
        "writes",
        "l2_read_hits",
        "l2_read_misses",
        "stall_cycles",
        "stall_data_time",
        "replies_sent",
        "busy_cycles",
    )

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.l2_read_hits = 0
        self.l2_read_misses = 0
        # Cycles in which the head reply was blocked by a full NI queue.
        self.stall_cycles = 0
        # Total time reply data waited in the MC output queue before the NI
        # accepted it (the Fig. 12 "data stall time" metric, summed over
        # data items).
        self.stall_data_time = 0
        self.replies_sent = 0
        self.busy_cycles = 0


class MemoryController:
    """One MC node (L2 bank + memory controller + GDDR5 channel)."""

    REPLY_QUEUE_GATE = 8       # stop processing new requests beyond this
    MAX_OFFERS_PER_CYCLE = 4   # wide MC->NI link: several packets per cycle

    def __init__(
        self,
        mc_id: int,
        node: int,
        config: GPUConfig,
        reply_offer: Callable[[int, Packet], bool],
        reply_can_accept: Callable[[int, Packet], bool],
        reply_sizes: Tuple[int, int],
        reply_priority: int = 0,
        request_release: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.mc_id = mc_id
        self.node = node
        self.config = config
        self.l2 = Cache(config.l2_size_bytes, config.line_bytes, config.l2_assoc)
        self.dram = DRAMChannel(
            config.dram, config.line_bytes, config.mc_queue_depth
        )
        self._reply_offer = reply_offer
        self._reply_can_accept = reply_can_accept
        self._read_reply_size, self._write_reply_size = reply_sizes
        self._reply_priority = reply_priority
        self._request_release = request_release

        # Requests delivered by the request network, awaiting processing.
        self.request_queue: Deque[Packet] = deque()
        # L2-hit pipeline: (ready_at, seq, reply_packet_args)
        self._l2_pipe: List[Tuple[int, int, Tuple[int, bool, int]]] = []
        self._seq = 0
        # Ready reply data waiting for the NI (the Fig. 12 stall point).
        self.reply_queue: Deque[Packet] = deque()
        self._mem_clock_acc = 0.0
        # Optional L2-side miss merging (config.l2_miss_merging): line ->
        # requesters waiting on the in-flight DRAM fetch.
        self._miss_waiters: dict = {}
        self.stats = MCStats()

    # -- request-network delivery callback ---------------------------------
    def on_request(self, packet: Packet, now: int) -> None:
        self.request_queue.append(packet)

    # ------------------------------------------------------------------
    def _make_reply(
        self, requester: int, is_write: bool, line: int, now: int
    ) -> Packet:
        if is_write:
            ptype, size = PacketType.WRITE_REPLY, self._write_reply_size
        else:
            ptype, size = PacketType.READ_REPLY, self._read_reply_size
        return Packet(
            ptype,
            src=self.node,
            dest=requester,
            size=size,
            created_at=now,
            priority=self._reply_priority,
            tag=(is_write, line),
        )

    def _process_requests(self, now: int) -> None:
        # Gate on the reply side: when reply data is piling up, the MC slows
        # its request pipeline (this is what propagates backpressure).
        budget = 1
        while (
            budget > 0
            and self.request_queue
            and len(self.reply_queue) < self.REPLY_QUEUE_GATE
        ):
            pkt = self.request_queue[0]
            is_write = pkt.ptype == PacketType.WRITE_REQUEST
            requester, line = pkt.tag  # set by the core when requesting
            if is_write:
                self.l2.write(line)
                # Write data continues to DRAM (write-through).
                req = DRAMRequest(line, True, cookie=None)
                if not self.dram.enqueue(req):
                    break  # DRAM queue full: retry next cycle
                self._seq += 1
                heapq.heappush(
                    self._l2_pipe,
                    (
                        now + self.config.l2_latency,
                        self._seq,
                        (requester, True, line),
                    ),
                )
                self.stats.writes += 1
            else:
                self.stats.reads += 1
                if self.l2.lookup(line):
                    self.stats.l2_read_hits += 1
                    self._seq += 1
                    heapq.heappush(
                        self._l2_pipe,
                        (
                            now + self.config.l2_latency,
                            self._seq,
                            (requester, False, line),
                        ),
                    )
                else:
                    self.stats.l2_read_misses += 1
                    if (
                        self.config.l2_miss_merging
                        and line in self._miss_waiters
                    ):
                        # Piggyback on the in-flight fetch.
                        self._miss_waiters[line].append(requester)
                    else:
                        req = DRAMRequest(line, False, cookie=requester)
                        if not self.dram.enqueue(req):
                            # Retry the request next cycle (roll back stats).
                            self.stats.reads -= 1
                            self.stats.l2_read_misses -= 1
                            self.l2.stats.misses -= 1
                            break
                        if self.config.l2_miss_merging:
                            self._miss_waiters[line] = [requester]
            self.request_queue.popleft()
            if self._request_release is not None:
                self._request_release(pkt.size)
            budget -= 1

    def _step_dram(self, now: int) -> None:
        self._mem_clock_acc += self.config.mem_clock_ratio
        while self._mem_clock_acc >= 1.0:
            self._mem_clock_acc -= 1.0
            for done in self.dram.step_mem_cycle():
                if done.is_write:
                    continue  # write acks were issued at acceptance
                self.l2.fill(done.line_addr)
                if self.config.l2_miss_merging:
                    waiters = self._miss_waiters.pop(
                        done.line_addr, [done.cookie]
                    )
                else:
                    waiters = [done.cookie]
                for requester in waiters:
                    self.reply_queue.append(
                        self._make_reply(requester, False, done.line_addr, now)
                    )

    def _drain_l2_pipe(self, now: int) -> None:
        while self._l2_pipe and self._l2_pipe[0][0] <= now:
            _, _, (requester, is_write, line) = heapq.heappop(self._l2_pipe)
            self.reply_queue.append(self._make_reply(requester, is_write, line, now))

    def _inject_replies(self, now: int) -> None:
        offers = self.MAX_OFFERS_PER_CYCLE
        stalled = False
        while offers > 0 and self.reply_queue:
            pkt = self.reply_queue[0]
            wait = now - pkt.created_at  # cycles the data sat in the MC
            if not self._reply_can_accept(self.node, pkt):
                stalled = True
                break
            if self._reply_offer(self.node, pkt):
                self.reply_queue.popleft()
                self.stats.replies_sent += 1
                self.stats.stall_data_time += wait
                offers -= 1
            else:
                stalled = True
                break
        if stalled:
            # Ready reply data is waiting in the MC because the NI injection
            # queue is full: the Fig. 12 metric.
            self.stats.stall_cycles += 1

    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        if (
            self.request_queue
            or self.reply_queue
            or self._l2_pipe
            or self.dram.pending
        ):
            self.stats.busy_cycles += 1
        self._step_dram(now)
        self._drain_l2_pipe(now)
        self._process_requests(now)
        self._inject_replies(now)

    # -- introspection -----------------------------------------------------
    @property
    def pending_work(self) -> int:
        return (
            len(self.request_queue)
            + len(self.reply_queue)
            + len(self._l2_pipe)
            + self.dram.pending
        )
