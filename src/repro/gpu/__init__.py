"""Cycle-level GPGPU model (GPGPU-Sim substitute).

SIMT cores issue warp instructions under greedy-then-oldest scheduling;
memory instructions probe a real L1, miss into MSHRs and travel as request
packets over the request NoC to memory-controller nodes, where an L2 bank
and a GDDR5 timing model produce reply data that is injected into the reply
NoC — the exact path whose injection bottleneck the paper attacks.
"""

from repro.gpu.cache import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.core import Core
from repro.gpu.dram import DRAMChannel, GDDR5Timing
from repro.gpu.mc import MemoryController
from repro.gpu.mshr import MSHRTable
from repro.gpu.system import GPGPUSystem, SimulationResult
from repro.gpu.warp import GTOScheduler, Warp

__all__ = [
    "GPUConfig",
    "Cache",
    "MSHRTable",
    "GDDR5Timing",
    "DRAMChannel",
    "Warp",
    "GTOScheduler",
    "Core",
    "MemoryController",
    "GPGPUSystem",
    "SimulationResult",
]
