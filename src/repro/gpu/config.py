"""GPGPU configuration (Table I of the paper).

All clocks are expressed relative to the interconnect/L2 clock (1 GHz),
which is the simulator's base tick: cores run at 1.126x, GDDR5 command
clock at 1.75x.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GDDR5TimingParams:
    """GDDR5 timing in memory-clock cycles (Table I, GTX980-like)."""

    tRP: int = 12     # precharge
    tRC: int = 40     # row cycle
    tRRD: int = 6     # activate-to-activate (different banks)
    tRAS: int = 28    # activate-to-precharge
    tRCD: int = 12    # activate-to-read
    tCL: int = 12     # CAS latency
    num_banks: int = 8
    # 32 data pins, quad data rate -> 16 bytes per memory clock.
    bus_bytes_per_cycle: int = 16
    # Periodic all-bank refresh: every tREFI cycles the channel blocks for
    # tRFC.  Off by default (tREFI=0): the headline results were measured
    # without refresh, whose bandwidth cost is ~1-2%.
    tREFI: int = 0
    tRFC: int = 88

    def validate(self) -> None:
        for name in ("tRP", "tRC", "tRRD", "tRAS", "tRCD", "tCL"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.tRAS + self.tRP > self.tRC:
            raise ValueError("inconsistent timing: tRAS + tRP must be <= tRC")


@dataclass
class GPUConfig:
    """Full-system configuration; defaults reproduce Table I."""

    # Topology / nodes
    mesh_width: int = 6
    mesh_height: int = 6
    num_cores: int = 28
    num_mcs: int = 8

    # Clocks (ratios to the 1 GHz interconnect clock)
    core_clock_ratio: float = 1.126   # 1126 MHz
    mem_clock_ratio: float = 1.75     # 1.75 GHz GDDR5

    # Core microarchitecture
    warp_size: int = 32
    simd_width: int = 8
    warps_per_core: int = 32          # resident warps (CTAs x warps/CTA)
    max_outstanding_loads: int = 8    # per-warp MSHR-backed loads in flight

    # Memory hierarchy
    line_bytes: int = 128
    l1_size_bytes: int = 16 * 1024
    l1_assoc: int = 4
    l1_mshr_entries: int = 32
    l2_size_bytes: int = 128 * 1024   # per MC
    l2_assoc: int = 8
    l2_latency: int = 20              # NoC cycles for an L2 hit
    mc_queue_depth: int = 32          # request queue entries per MC
    # Merge concurrent L2 misses to the same line at the MC (an L2-side
    # MSHR).  Off by default: the headline EXPERIMENTS.md numbers were
    # measured without it; see benchmarks/bench_ablation_l2_mshr.py for
    # its (small) effect.
    l2_miss_merging: bool = False

    # NoC geometry shared by both networks
    link_width_bits: int = 128
    num_vcs: int = 4
    ni_queue_flits: int = 36
    # Per-hop pipeline depth (router + link) in cycles; 1 = the default
    # single-cycle router model, larger values model deeper pipelines.
    noc_hop_latency: int = 1

    # GDDR5
    dram: GDDR5TimingParams = field(default_factory=GDDR5TimingParams)

    # Scheduling / layout
    warp_scheduler: str = "gto"       # greedy-then-oldest (Table I)
    mc_placement: str = "diamond"     # Table I: diamond MC placement

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.num_cores + self.num_mcs > self.mesh_width * self.mesh_height:
            raise ValueError(
                f"{self.num_cores} cores + {self.num_mcs} MCs do not fit a "
                f"{self.mesh_width}x{self.mesh_height} mesh"
            )
        if self.warp_size % self.simd_width != 0:
            raise ValueError("warp_size must be a multiple of simd_width")
        if self.line_bytes % (self.link_width_bits // 8) != 0:
            raise ValueError("cache line must be a whole number of flits")
        if self.noc_hop_latency < 1:
            raise ValueError("noc_hop_latency must be >= 1")
        self.dram.validate()

    # -- derived quantities -------------------------------------------------
    @property
    def flit_bytes(self) -> int:
        return self.link_width_bits // 8

    @property
    def long_packet_flits(self) -> int:
        """Flits of a data-carrying packet: header + line."""
        return 1 + self.line_bytes // self.flit_bytes

    @property
    def warp_issue_cycles(self) -> int:
        """Core cycles to push one warp through the SIMD pipeline."""
        return self.warp_size // self.simd_width

    def mc_for_line(self, line_addr: int) -> int:
        """Fine-grained line interleaving of the address space across MCs."""
        # Mix the bits a little so strided workloads don't camp on one MC.
        h = (line_addr ^ (line_addr >> 7) ^ (line_addr >> 13)) & 0xFFFFFFFF
        return h % self.num_mcs

    @classmethod
    def scaled(cls, mesh: int, **overrides) -> "GPUConfig":
        """Configurations for the scalability study (Sec. 7.5): 4x4 / 6x6 / 8x8.

        MC count scales with the perimeter as in the paper's setups; CC
        count fills the rest of the mesh.
        """
        if mesh == 4:
            base = dict(mesh_width=4, mesh_height=4, num_cores=12, num_mcs=4)
        elif mesh == 6:
            base = dict(mesh_width=6, mesh_height=6, num_cores=28, num_mcs=8)
        elif mesh == 8:
            base = dict(mesh_width=8, mesh_height=8, num_cores=52, num_mcs=12)
        else:
            raise ValueError("supported scaled meshes: 4, 6, 8")
        base.update(overrides)
        return cls(**base)
