"""Warps and the greedy-then-oldest (GTO) warp scheduler (Table I).

A warp is the unit of issue.  GPGPUs hide memory latency by multithreading:
when a warp blocks on outstanding loads, the scheduler swaps in another
ready warp — the fundamental GPU design point the paper's introduction
contrasts against CPUs.
"""

from __future__ import annotations

import enum
from typing import List, Optional


class WarpState(enum.IntEnum):
    READY = 0
    BLOCKED = 1    # waiting on outstanding loads
    PIPELINE = 2   # issued; SIMD pipeline busy until ready_at
    FINISHED = 3


class Warp:
    __slots__ = (
        "wid",
        "state",
        "ready_at",
        "outstanding_loads",
        "instructions_issued",
        "blocked_since",
        "blocked_cycles",
    )

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.state = WarpState.READY
        self.ready_at = 0
        self.outstanding_loads = 0
        self.instructions_issued = 0
        self.blocked_since: Optional[int] = None
        self.blocked_cycles = 0

    def is_ready(self, now: int) -> bool:
        if self.state == WarpState.READY:
            return True
        if self.state == WarpState.PIPELINE and now >= self.ready_at:
            self.state = WarpState.READY
            return True
        return False

    def block(self, now: int) -> None:
        self.state = WarpState.BLOCKED
        self.blocked_since = now

    def unblock_one(self, now: int) -> None:
        """One outstanding load returned."""
        if self.outstanding_loads <= 0:
            raise RuntimeError(f"warp {self.wid}: spurious load return")
        self.outstanding_loads -= 1
        if self.outstanding_loads == 0 and self.state == WarpState.BLOCKED:
            if self.blocked_since is not None:
                self.blocked_cycles += now - self.blocked_since
                self.blocked_since = None
            self.state = WarpState.READY

    def issue(self, now: int, pipeline_cycles: int) -> None:
        self.instructions_issued += 1
        self.ready_at = now + pipeline_cycles
        self.state = WarpState.PIPELINE

    def __repr__(self) -> str:  # pragma: no cover
        return f"Warp(wid={self.wid}, {self.state.name}, out={self.outstanding_loads})"


class GTOScheduler:
    """Greedy-then-oldest: keep issuing the current warp until it stalls,
    then fall back to the oldest (lowest wid = earliest assigned) ready warp.
    """

    def __init__(self, warps: List[Warp]) -> None:
        if not warps:
            raise ValueError("scheduler needs at least one warp")
        self.warps = warps
        self._current: Optional[Warp] = None

    def pick(self, now: int) -> Optional[Warp]:
        cur = self._current
        if cur is not None and cur.state != WarpState.FINISHED and cur.is_ready(now):
            return cur
        for warp in self.warps:  # list order == age order
            if warp.state == WarpState.FINISHED:
                continue
            if warp.is_ready(now):
                self._current = warp
                return warp
        return None

    def on_stall(self) -> None:
        """Current warp could not issue (structural hazard): release greed."""
        self._current = None

    @property
    def current(self) -> Optional[Warp]:
        return self._current


class LRRScheduler(GTOScheduler):
    """Loose round-robin alternative scheduler (for sensitivity studies)."""

    def __init__(self, warps: List[Warp]) -> None:
        super().__init__(warps)
        self._next = 0

    def pick(self, now: int) -> Optional[Warp]:
        n = len(self.warps)
        for off in range(n):
            warp = self.warps[(self._next + off) % n]
            if warp.state == WarpState.FINISHED:
                continue
            if warp.is_ready(now):
                self._next = (warp.wid + 1) % n
                self._current = warp
                return warp
        return None


def make_scheduler(name: str, warps: List[Warp]) -> GTOScheduler:
    name = name.lower()
    if name in ("gto", "greedy-then-oldest"):
        return GTOScheduler(warps)
    if name in ("lrr", "round-robin", "rr"):
        return LRRScheduler(warps)
    raise ValueError(f"unknown warp scheduler: {name!r}")
