"""Full-system GPGPU simulator: cores ⇄ request NoC ⇄ MCs ⇄ reply NoC.

``GPGPUSystem`` assembles the whole of Figs. 1–2 for a given
(:class:`~repro.gpu.config.GPUConfig`, :class:`~repro.core.schemes.Scheme`,
:class:`~repro.workloads.profile.WorkloadProfile`) triple and advances it on
the 1 GHz interconnect clock, with cores at 1.126x and GDDR5 at 1.75x via
fractional accumulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.schemes import Scheme
from repro.gpu.config import GPUConfig
from repro.gpu.core import Core
from repro.gpu.mc import MemoryController
from repro.noc.flit import Packet, PacketType, packet_size_for
from repro.noc.kernel import resolve_kernel
from repro.noc.network import Network, NetworkConfig
from repro.noc.routing import hop_count
from repro.noc.topology import default_placement
from repro.workloads.profile import WorkloadProfile


@dataclass
class SimulationResult:
    """Measured outputs of one full-system run (post-warmup window)."""

    benchmark: str
    scheme: str
    cycles: int                      # NoC cycles measured
    core_cycles: int
    instructions: int
    ipc: float                       # aggregate instructions / core cycle
    mc_stall_cycles: int             # cycles with a blocked reply head, summed
    request_latency: float           # mean request packet latency
    reply_latency: float             # mean reply packet latency
    reply_traffic_share: float       # flit-weighted reply share (Fig. 5)
    mc_stall_time: int = 0           # total data wait time in MCs
    replies_sent: int = 0            # replies injected during the window
    mc_stall_per_reply: float = 0.0  # Fig. 12 metric (equal-work normalized)
    traffic_mix: Dict[str, float] = field(default_factory=dict)
    injection_link_util: float = 0.0
    mesh_link_util: float = 0.0
    mean_ni_occupancy: float = 0.0   # packets, averaged over MC NIs (Fig. 6)
    l2_hit_rate: float = 0.0
    dram_row_hit_rate: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)


class GPGPUSystem:
    def __init__(
        self,
        config: GPUConfig,
        scheme: Scheme,
        profile: WorkloadProfile,
        seed: int = 1,
        ni_queue_flits: Optional[int] = None,
        num_vcs: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> None:
        self.config = config
        self.scheme = scheme
        self.profile = profile
        self.seed = seed
        # Simulation kernel backend: forwarded to both NoCs, and selects
        # the activity-gated core stepping (see repro.noc.kernel).
        self.kernel_name = resolve_kernel(kernel)
        num_vcs = num_vcs if num_vcs is not None else config.num_vcs
        ni_flits = (
            ni_queue_flits if ni_queue_flits is not None else config.ni_queue_flits
        )

        self.mc_nodes, cc_nodes = default_placement(
            config.mesh_width,
            config.mesh_height,
            config.num_mcs,
            style=config.mc_placement,
        )
        self.cc_nodes = cc_nodes[: config.num_cores]
        self.mc_set = set(self.mc_nodes)

        # Packet geometries per network (Fig. 4 widens one network's links,
        # which shortens that network's long packets).
        req_flit_bytes = config.flit_bytes * scheme.request_width_mult
        rep_flit_bytes = config.flit_bytes * scheme.reply_width_mult
        self.req_sizes = {
            PacketType.READ_REQUEST: 1,
            PacketType.WRITE_REQUEST: packet_size_for(
                PacketType.WRITE_REQUEST, config.line_bytes, req_flit_bytes
            ),
        }
        self.rep_sizes = (
            packet_size_for(
                PacketType.READ_REPLY, config.line_bytes, rep_flit_bytes
            ),
            1,  # write reply
        )

        ari = scheme.ari
        speedup_bound = min(4, num_vcs)
        split_queues = min(ari.num_split_queues, num_vcs)

        request_cfg = NetworkConfig(
            width=config.mesh_width,
            height=config.mesh_height,
            num_vcs=num_vcs,
            vc_capacity=max(self.req_sizes.values()),
            routing=scheme.routing,
            ni_queue_flits=ni_flits,
            link_latency=config.noc_hop_latency,
            bounded_ejectors={
                mc: 4 * max(self.req_sizes.values()) for mc in self.mc_nodes
            },
        )
        if getattr(scheme, "accelerate_request", False):
            # Ablation: give the CC-side request injectors the full ARI
            # structure as well.
            request_cfg.accelerated_nodes = set(self.cc_nodes)
            request_cfg.ni_kind = ari.ni_kind
            request_cfg.num_split_queues = split_queues
            request_cfg.injection_speedup = min(
                ari.effective_speedup, speedup_bound
            )
            request_cfg.priority_enabled = ari.priority_enabled
            request_cfg.priority_levels = ari.priority_levels
        reply_cfg = NetworkConfig(
            width=config.mesh_width,
            height=config.mesh_height,
            num_vcs=num_vcs,
            vc_capacity=self.rep_sizes[0],
            routing=scheme.routing,
            ni_queue_flits=ni_flits,
            link_latency=config.noc_hop_latency,
            accelerated_nodes=self.mc_set,
            ni_kind=scheme.ni_kind,
            num_split_queues=split_queues,
            injection_speedup=min(ari.effective_speedup, speedup_bound),
            num_injection_ports=scheme.num_injection_ports,
            priority_enabled=ari.priority_enabled,
            priority_levels=ari.priority_levels,
            starvation_threshold=ari.starvation_threshold,
        )
        self.request_net = Network(request_cfg, kernel=self.kernel_name)
        if scheme.reply_overlay == "da2mesh":
            from repro.noc.da2mesh import DA2MeshReplyNetwork

            self.reply_net = DA2MeshReplyNetwork(
                mc_nodes=self.mc_nodes,
                num_nodes=config.mesh_width * config.mesh_height,
                ni_mode="split" if ari.supply else "single",
                ni_queue_flits=ni_flits,
                num_split_queues=split_queues,
                kernel=self.kernel_name,
            )
        else:
            self.reply_net = Network(reply_cfg, kernel=self.kernel_name)

        # Cores on CC nodes.
        self.cores: List[Core] = [
            Core(i, node, config, profile, seed=seed)
            for i, node in enumerate(self.cc_nodes)
        ]
        self._core_by_node: Dict[int, Core] = {c.node: c for c in self.cores}

        # MCs on MC nodes (reply priority = L-1 at creation, Sec. 5).
        reply_priority = ari.priority_levels - 1 if ari.priority_enabled else 0
        self.mcs: List[MemoryController] = []
        for i, node in enumerate(self.mc_nodes):
            ejector = self.request_net.ejectors[node]
            mc = MemoryController(
                i,
                node,
                config,
                reply_offer=self.reply_net.offer,
                reply_can_accept=self.reply_net.can_accept,
                reply_sizes=self.rep_sizes,
                reply_priority=reply_priority,
                request_release=ejector.release,
            )
            self.mcs.append(mc)
        self._mc_by_node: Dict[int, MemoryController] = {
            m.node: m for m in self.mcs
        }

        self.request_net.on_delivery = self._on_request_delivery
        self.reply_net.on_delivery = self._on_reply_delivery

        self._core_clock_acc = 0.0
        self._fast_cores = self.kernel_name == "activity"
        self.now = 0
        # Opt-in periodic sampling (repro.telemetry); None = untracked hot
        # path, a single comparison per cycle.
        self.telemetry = None
        # Work-proportional network-energy accounting: flit-hops charged at
        # request issue (request packet + its reply over the same minimal
        # path), so dynamic energy tracks issued work with no in-flight
        # bias (see repro.energy.gpuwattch).
        self.expected_flit_hops = 0
        self._coords = self.request_net.topology.coords

    # -- warm-up ------------------------------------------------------------
    def prewarm_caches(self) -> None:
        """Fill every L2 bank with its slice of the working set.

        Short simulations would otherwise spend their whole budget on cold
        compulsory misses; prewarming puts the L2s directly into the steady
        state where hit rate ~ capacity/footprint, which is what a long
        GPGPU-Sim run converges to.
        """
        cfg = self.config
        ws = self.profile.working_set_lines
        capacity = cfg.l2_size_bytes // cfg.line_bytes
        filled = [0] * len(self.mcs)
        for line in range(ws):
            mc_idx = cfg.mc_for_line(line)
            if filled[mc_idx] >= capacity:
                if all(f >= capacity for f in filled):
                    break
                continue
            self.mcs[mc_idx].l2.fill(line)
            filled[mc_idx] += 1

    # -- network callbacks ---------------------------------------------------
    def _on_request_delivery(self, node: int, packet: Packet, now: int) -> None:
        self._mc_by_node[node].on_request(packet, now)

    def _on_reply_delivery(self, node: int, packet: Packet, now: int) -> None:
        core = self._core_by_node.get(node)
        if core is None:
            return  # reply to a node without a core (can't happen normally)
        is_write, line = packet.tag
        if is_write:
            core.on_write_reply(now)
        else:
            core.on_read_reply(line, now)

    # -- per-cycle work ----------------------------------------------------
    def _drain_core_requests(self) -> None:
        cfg = self.config
        for core in self.cores:
            # One packet offered per NoC cycle per core.
            if not core.outbound:
                continue
            is_write, line = core.outbound[0]
            mc_node = self.mc_nodes[cfg.mc_for_line(line)]
            ptype = (
                PacketType.WRITE_REQUEST if is_write else PacketType.READ_REQUEST
            )
            pkt = Packet(
                ptype,
                src=core.node,
                dest=mc_node,
                size=self.req_sizes[ptype],
                created_at=self.now,
                tag=(core.node, line),
            )
            if self.request_net.offer(core.node, pkt):
                core.outbound.popleft()
                core._issue_epoch += 1
                hops = hop_count(
                    self._coords(core.node), self._coords(mc_node)
                ) + 2
                reply_size = 1 if is_write else self.rep_sizes[0]
                self.expected_flit_hops += hops * (pkt.size + reply_size)

    def step(self) -> None:
        now = self.now
        self._core_clock_acc += self.config.core_clock_ratio
        if self._fast_cores:
            while self._core_clock_acc >= 1.0:
                self._core_clock_acc -= 1.0
                for core in self.cores:
                    core.step_core_cycle_fast(now)
        else:
            while self._core_clock_acc >= 1.0:
                self._core_clock_acc -= 1.0
                for core in self.cores:
                    core.step_core_cycle(now)
        self._drain_core_requests()
        for mc in self.mcs:
            mc.step(now)
        self.request_net.step()
        self.reply_net.step()
        t = self.telemetry
        if t is not None:
            t.on_cycle(now)
        self.now = now + 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def attach_telemetry(self, collector) -> None:
        """Instrument this system with a
        :class:`~repro.telemetry.TelemetryCollector` (``req.*`` / ``rep.*``
        network channels plus ``sys.*`` GPU channels)."""
        collector.attach_system(self)

    def _reply_injection_util(self) -> float:
        try:
            return self.reply_net.injection_link_utilization(self.mc_nodes)
        except TypeError:  # overlay fabrics take no node filter
            return self.reply_net.injection_link_utilization()

    def _run_tolerant(self, cycles: int) -> Optional[int]:
        """Run, catching a deadlock; returns the cycle it hit, or None."""
        from repro.noc.network import DeadlockError

        try:
            self.run(cycles)
        except DeadlockError:
            return self.now
        return None

    # -- measurement ---------------------------------------------------------
    def simulate(
        self,
        cycles: int,
        warmup: int = 0,
        prewarm: bool = True,
        on_deadlock: str = "raise",
    ) -> SimulationResult:
        """Run ``warmup`` cycles, then measure over ``cycles`` cycles.

        ``on_deadlock="record"`` turns a :class:`~repro.noc.network.
        DeadlockError` into data instead of an exception: stepping stops,
        the result is assembled from the state reached, and
        ``extras["first_deadlock_cycle"]`` records when progress died —
        fault campaigns measure *how* a scheme fails, not just that it
        did.
        """
        if on_deadlock not in ("raise", "record"):
            raise ValueError("on_deadlock must be 'raise' or 'record'")
        if prewarm:
            self.prewarm_caches()
        first_deadlock: Optional[int] = None
        if warmup:
            if on_deadlock == "record":
                first_deadlock = self._run_tolerant(warmup)
            else:
                self.run(warmup)
        instr0 = sum(c.stats.instructions for c in self.cores)
        ccyc0 = sum(c.stats.core_cycles for c in self.cores)
        stall0 = sum(m.stats.stall_cycles for m in self.mcs)
        stallt0 = sum(m.stats.stall_data_time for m in self.mcs)
        replies0 = sum(m.stats.replies_sent for m in self.mcs)
        if on_deadlock == "record":
            if first_deadlock is None:
                first_deadlock = self._run_tolerant(cycles)
        else:
            self.run(cycles)
        instructions = sum(c.stats.instructions for c in self.cores) - instr0
        core_cycles = sum(c.stats.core_cycles for c in self.cores) - ccyc0
        stalls = sum(m.stats.stall_cycles for m in self.mcs) - stall0
        stall_time = sum(m.stats.stall_data_time for m in self.mcs) - stallt0
        replies = sum(m.stats.replies_sent for m in self.mcs) - replies0

        req_stats = self.request_net.stats
        rep_stats = self.reply_net.stats
        mix_req = req_stats.traffic_mix()
        mix_rep = rep_stats.traffic_mix()
        req_flits = sum(req_stats.flits_delivered.values())
        rep_flits = sum(rep_stats.flits_delivered.values())
        total_flits = req_flits + rep_flits
        mix = {}
        if total_flits:
            for t in PacketType:
                flits = (
                    req_stats.flits_delivered[t] + rep_stats.flits_delivered[t]
                )
                mix[t.name.lower()] = flits / total_flits

        l2_acc = sum(m.l2.stats.accesses for m in self.mcs)
        l2_hits = sum(m.l2.stats.hits for m in self.mcs)
        row_tot = sum(
            m.dram.row_hits + m.dram.row_misses + m.dram.row_conflicts
            for m in self.mcs
        )
        row_hits = sum(m.dram.row_hits for m in self.mcs)
        mc_ni_occ = [self.reply_net.ni_occupancy(n) for n in self.mc_nodes]
        # Warp-visible memory round-trip latency: total cycles warps spent
        # blocked on loads, per read reply received.
        blocked = sum(
            w.blocked_cycles for c in self.cores for w in c.warps
        )
        replies_recv = sum(c.stats.read_replies for c in self.cores)

        per_core_cycles = core_cycles / max(1, len(self.cores))
        return SimulationResult(
            benchmark=self.profile.name,
            scheme=self.scheme.name,
            cycles=cycles,
            core_cycles=core_cycles,
            instructions=instructions,
            ipc=instructions / per_core_cycles if per_core_cycles else 0.0,
            mc_stall_cycles=stalls,
            mc_stall_time=stall_time,
            replies_sent=replies,
            mc_stall_per_reply=(stall_time / replies) if replies else 0.0,
            request_latency=req_stats.mean_latency(
                [PacketType.READ_REQUEST, PacketType.WRITE_REQUEST]
            ),
            reply_latency=rep_stats.mean_latency(
                [PacketType.READ_REPLY, PacketType.WRITE_REPLY]
            ),
            reply_traffic_share=(rep_flits / total_flits) if total_flits else 0.0,
            traffic_mix=mix,
            injection_link_util=self._reply_injection_util(),
            mesh_link_util=self.reply_net.mesh_link_utilization(),
            mean_ni_occupancy=(
                sum(mc_ni_occ) / len(mc_ni_occ) if mc_ni_occ else 0.0
            ),
            l2_hit_rate=(l2_hits / l2_acc) if l2_acc else 0.0,
            dram_row_hit_rate=(row_hits / row_tot) if row_tot else 0.0,
            extras={
                "mean_memory_latency": (
                    blocked / replies_recv if replies_recv else 0.0
                ),
                **(
                    {"first_deadlock_cycle": float(first_deadlock)}
                    if first_deadlock is not None
                    else {}
                ),
            },
        )
