"""Miss Status Holding Registers.

The MSHR table merges concurrent misses to the same cache line: the first
miss sends a request to memory; later misses to the same line piggyback on
the outstanding entry and all wake up together when the fill returns.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class MSHRTable:
    """A bounded table of outstanding line misses with merge support."""

    def __init__(self, num_entries: int, max_merged: int = 8) -> None:
        if num_entries < 1:
            raise ValueError("MSHR table needs at least one entry")
        self.num_entries = num_entries
        self.max_merged = max_merged
        # line_addr -> list of waiter cookies (opaque to the table)
        self._entries: Dict[int, List[object]] = {}
        self.merges = 0
        self.allocations = 0
        self.full_stalls = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def outstanding(self, line_addr: int) -> bool:
        return line_addr in self._entries

    def can_handle(self, line_addr: int) -> bool:
        """Would :meth:`allocate` succeed right now?"""
        entry = self._entries.get(line_addr)
        if entry is not None:
            return len(entry) < self.max_merged
        return not self.full

    def allocate(self, line_addr: int, waiter: object) -> Optional[bool]:
        """Register a miss.

        Returns ``True`` if this is a *new* miss (caller must send the
        memory request), ``False`` if merged into an existing entry, and
        ``None`` if the table cannot take it (structural stall).
        """
        entry = self._entries.get(line_addr)
        if entry is not None:
            if len(entry) >= self.max_merged:
                self.full_stalls += 1
                return None
            entry.append(waiter)
            self.merges += 1
            return False
        if self.full:
            self.full_stalls += 1
            return None
        self._entries[line_addr] = [waiter]
        self.allocations += 1
        return True

    def fill(self, line_addr: int) -> List[object]:
        """The memory reply arrived: release and return all waiters."""
        waiters = self._entries.pop(line_addr, None)
        if waiters is None:
            raise KeyError(f"fill for line {line_addr:#x} with no MSHR entry")
        return waiters
