"""SIMT core cluster: warps + L1 + MSHRs + outbound request queue.

Each core corresponds to one CC node of Fig. 1.  Per core cycle the GTO
scheduler picks a ready warp and tries to issue its next instruction.
Memory instructions probe the L1; misses allocate/merge MSHRs and emit read
requests; stores write through and emit write requests.  Structural hazards
(MSHR full, outbound queue full) keep the instruction pending so no work is
lost — the warp simply retries, which is how reply-network backpressure
ultimately throttles the core (the end-to-end loop the paper measures as
IPC).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.gpu.cache import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.mshr import MSHRTable
from repro.gpu.warp import GTOScheduler, Warp, WarpState, make_scheduler
from repro.workloads.profile import WorkloadProfile


class CoreStats:
    __slots__ = (
        "instructions",
        "mem_instructions",
        "loads",
        "stores",
        "idle_cycles",
        "struct_stall_cycles",
        "core_cycles",
        "read_replies",
        "write_replies",
    )

    def __init__(self) -> None:
        self.instructions = 0
        self.mem_instructions = 0
        self.loads = 0
        self.stores = 0
        self.idle_cycles = 0
        self.struct_stall_cycles = 0
        self.core_cycles = 0
        self.read_replies = 0
        self.write_replies = 0


# Outbound memory request descriptor: (is_write, line_addr)
MemRequest = Tuple[bool, int]


class Core:
    """One streaming-multiprocessor cluster."""

    OUTBOUND_DEPTH = 32

    def __init__(
        self,
        core_id: int,
        node: int,
        config: GPUConfig,
        profile: WorkloadProfile,
        seed: int = 1,
    ) -> None:
        self.core_id = core_id
        self.node = node
        self.config = config
        self.profile = profile
        self.l1 = Cache(config.l1_size_bytes, config.line_bytes, config.l1_assoc)
        self.mshr = MSHRTable(config.l1_mshr_entries)
        self.warps: List[Warp] = [Warp(w) for w in range(config.warps_per_core)]
        self.scheduler = make_scheduler(config.warp_scheduler, self.warps)
        self.streams = [
            profile.make_stream(core_id, w, seed) for w in range(config.warps_per_core)
        ]
        self._pending_instr: List[Optional[tuple]] = [None] * config.warps_per_core
        self.outbound: Deque[MemRequest] = deque()
        self.stats = CoreStats()
        # Activity-kernel stall/idle memo (see step_core_cycle_fast):
        # (wake_at, epoch, stalled) — valid while now < wake_at and no
        # issue-relevant event has bumped the epoch.
        self._issue_epoch = 0
        self._issue_memo: Optional[Tuple[int, int, bool]] = None
        # The greedy-then-oldest scheduler re-picks the same first-ready
        # warp on consecutive stalled cycles; LRR rotates, so only GTO
        # proper admits the stall memo (idle memo is scheduler-agnostic).
        self._memo_stalls = type(self.scheduler) is GTOScheduler

    # ------------------------------------------------------------------
    def step_core_cycle(self, now: int) -> None:
        """One core-clock cycle of issue logic (``now`` is in NoC cycles)."""
        self.stats.core_cycles += 1
        warp = self.scheduler.pick(now)
        if warp is None:
            self.stats.idle_cycles += 1
            return
        instr = self._pending_instr[warp.wid]
        if instr is None:
            instr = self.streams[warp.wid].next()
            self._pending_instr[warp.wid] = instr
        if self._try_issue(warp, instr, now):
            self._pending_instr[warp.wid] = None
        else:
            self.stats.struct_stall_cycles += 1
            self.scheduler.on_stall()

    # -- activity-kernel fast path --------------------------------------
    def _pipeline_wake(self) -> int:
        """First cycle a PIPELINE warp matures; a huge sentinel if none."""
        wake = 1 << 60
        pipeline = WarpState.PIPELINE
        for w in self.warps:
            if w.state is pipeline and w.ready_at < wake:
                wake = w.ready_at
        return wake

    def step_core_cycle_fast(self, now: int) -> None:
        """Byte-identical :meth:`step_core_cycle`, memoizing dead cycles.

        A cycle that ends idle (no ready warp) or structurally stalled
        (ready warp, infeasible instruction) changes nothing but two stat
        counters, and its outcome repeats every cycle until (a) a reply
        arrives, (b) the outbound queue drains, or (c) a PIPELINE warp
        matures — the only events that change warp readiness or issue
        feasibility.  (a)/(b) bump ``_issue_epoch``; (c) is a known cycle
        recorded at memo time.  While the memo holds, the reference path
        would have re-derived the identical idle/stall verdict with no
        other side effects (the scheduler scan converts no warp states on
        such cycles), so counting the cycle is all that's left to do.
        Stall memoization additionally requires the GTO scheduler, whose
        post-stall re-pick is deterministic; LRR rotates between ready
        warps and may reach an issuable one, so only idle cycles are
        memoized there.
        """
        memo = self._issue_memo
        if memo is not None:
            if now < memo[0] and memo[1] == self._issue_epoch:
                st = self.stats
                st.core_cycles += 1
                if memo[2]:
                    st.struct_stall_cycles += 1
                else:
                    st.idle_cycles += 1
                return
            self._issue_memo = None
        self.stats.core_cycles += 1
        warp = self.scheduler.pick(now)
        if warp is None:
            self.stats.idle_cycles += 1
            self._issue_memo = (
                self._pipeline_wake(), self._issue_epoch, False
            )
            return
        instr = self._pending_instr[warp.wid]
        if instr is None:
            instr = self.streams[warp.wid].next()
            self._pending_instr[warp.wid] = instr
        if self._try_issue(warp, instr, now):
            self._pending_instr[warp.wid] = None
        else:
            self.stats.struct_stall_cycles += 1
            self.scheduler.on_stall()
            if self._memo_stalls:
                # on_stall() released greed, so next cycle GTO re-picks
                # the *oldest* ready warp.  The stall verdict only
                # repeats while that is the warp that just stalled; if
                # an older warp is ready (it was greedily bypassed this
                # cycle), its instruction gets its own issue attempt and
                # the cycle cannot be memoized.  The age-order scan
                # below touches exactly the prefix the reference pick()
                # would scan next cycle.
                finished = WarpState.FINISHED
                for w in self.scheduler.warps:
                    if w.state is finished:
                        continue
                    if w.is_ready(now):
                        if w is warp:
                            self._issue_memo = (
                                self._pipeline_wake(),
                                self._issue_epoch,
                                True,
                            )
                        break

    def _try_issue(self, warp: Warp, instr: tuple, now: int) -> bool:
        kind, lines = instr
        if kind == "c":
            warp.issue(now, 1)
            self.stats.instructions += 1
            return True
        # Memory instruction; dedupe coalesced lines.
        uniq = list(dict.fromkeys(lines))
        if kind == "st":
            if len(self.outbound) + len(uniq) > self.OUTBOUND_DEPTH:
                return False
            for line in uniq:
                self.l1.write(line)
                self.outbound.append((True, line))
            warp.issue(now, 1)
            self.stats.instructions += 1
            self.stats.mem_instructions += 1
            self.stats.stores += 1
            return True

        # Load: first a conservative feasibility pass so we never issue a
        # half-instruction.
        misses = [line for line in uniq if not self.l1.probe(line)]
        new_requests = [
            line for line in misses if not self.mshr.outstanding(line)
        ]
        if len(self.outbound) + len(new_requests) > self.OUTBOUND_DEPTH:
            return False
        if self.mshr.occupancy + len(new_requests) > self.mshr.num_entries:
            return False
        for line in misses:
            if not self.mshr.can_handle(line):
                return False

        # Commit.
        for line in uniq:
            if line in misses:
                is_new = self.mshr.allocate(line, warp)
                if is_new is None:
                    raise RuntimeError("MSHR refused after feasibility check")
                if is_new:
                    self.outbound.append((False, line))
                warp.outstanding_loads += 1
            else:
                self.l1.lookup(line)  # update LRU + hit stats
        # Count probe-misses in L1 stats (probe() is stateless).
        self.l1.stats.misses += len(misses)
        self.stats.instructions += 1
        self.stats.mem_instructions += 1
        self.stats.loads += 1
        if warp.outstanding_loads > 0:
            warp.block(now)
        else:
            warp.issue(now, 1)
        return True

    # ------------------------------------------------------------------
    def on_read_reply(self, line_addr: int, now: int) -> None:
        """A read reply for ``line_addr`` arrived from the reply network."""
        self._issue_epoch += 1
        self.stats.read_replies += 1
        self.l1.fill(line_addr)
        for warp in self.mshr.fill(line_addr):
            warp.unblock_one(now)

    def on_write_reply(self, now: int) -> None:
        self._issue_epoch += 1
        self.stats.write_replies += 1

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        if not self.stats.core_cycles:
            return 0.0
        return self.stats.instructions / self.stats.core_cycles

    def outstanding_loads(self) -> int:
        return sum(w.outstanding_loads for w in self.warps)
