"""Synthetic workload suite standing in for Rodinia / CUDA SDK benchmarks.

Each of the 30 named benchmarks is a :class:`~repro.workloads.profile.WorkloadProfile`
capturing the NoC-relevant signature of the real CUDA program: memory
intensity, read/write mix, coalescing, cache locality, footprint, and DRAM
row locality.  The paper classifies its 30 benchmarks into 9 highly
NoC-sensitive, 11 medium, and 10 low — the suite mirrors that split.
"""

from repro.workloads.profile import Instr, InstructionStream, WorkloadProfile
from repro.workloads.suite import (
    PAPER_FIG15_BENCHMARKS,
    PAPER_FIG6_BENCHMARKS,
    PAPER_FIG9_BENCHMARKS,
    SUITE,
    benchmark,
    benchmark_names,
    by_sensitivity,
)
from repro.workloads.tracefile import TraceWorkload, load_trace, record_trace
from repro.workloads.traffic import ReplyTrafficPattern, SyntheticTrafficGenerator

__all__ = [
    "WorkloadProfile",
    "InstructionStream",
    "Instr",
    "SUITE",
    "benchmark",
    "benchmark_names",
    "by_sensitivity",
    "PAPER_FIG6_BENCHMARKS",
    "PAPER_FIG9_BENCHMARKS",
    "PAPER_FIG15_BENCHMARKS",
    "SyntheticTrafficGenerator",
    "ReplyTrafficPattern",
    "TraceWorkload",
    "load_trace",
    "record_trace",
]
