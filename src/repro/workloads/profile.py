"""Workload profiles and per-warp instruction streams.

A :class:`WorkloadProfile` is the NoC-relevant signature of a CUDA kernel.
It cannot (and does not try to) reproduce functional behaviour; it produces
the same *memory request process* knobs that determine NoC load:

``mem_rate``
    Fraction of dynamic warp instructions that access memory.
``write_fraction``
    Fraction of memory instructions that are stores (Fig. 5 shows replies
    dominate because reads outnumber writes).
``coalesce_lines``
    Cache lines touched per memory instruction after coalescing (1 =
    perfectly coalesced, >1 = divergent access).
``reuse_prob``
    Probability an access re-touches the warp's recent-reuse window —
    the main source of L1 hits.
``working_set_lines``
    Footprint; the emergent L2 hit rate follows from footprint vs. L2
    capacity.
``stream_prob``
    Probability a *miss-path* access continues a sequential per-warp
    stream (drives DRAM row-buffer locality).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

# Instruction encodings returned by InstructionStream.next():
#   ("c", None)        compute instruction
#   ("ld", [lines])    load touching those cache lines
#   ("st", [lines])    store touching those cache lines
Instr = Tuple[str, Optional[List[int]]]


@dataclass(frozen=True)
class WorkloadProfile:
    name: str
    sensitivity: str            # "high" | "medium" | "low"
    mem_rate: float
    write_fraction: float
    coalesce_lines: int
    reuse_prob: float
    working_set_lines: int
    stream_prob: float = 0.7
    description: str = ""

    def __post_init__(self) -> None:
        if self.sensitivity not in ("high", "medium", "low"):
            raise ValueError(f"bad sensitivity {self.sensitivity!r}")
        if not (0.0 <= self.mem_rate <= 1.0):
            raise ValueError("mem_rate must be in [0, 1]")
        if not (0.0 <= self.write_fraction <= 1.0):
            raise ValueError("write_fraction must be in [0, 1]")
        if self.coalesce_lines < 1:
            raise ValueError("coalesce_lines must be >= 1")
        if not (0.0 <= self.reuse_prob < 1.0):
            raise ValueError("reuse_prob must be in [0, 1)")
        if self.working_set_lines < 16:
            raise ValueError("working_set_lines too small")

    def make_stream(self, core_id: int, warp_id: int, seed: int) -> "InstructionStream":
        return InstructionStream(self, core_id, warp_id, seed)

    def expected_l2_hit_rate(self, total_l2_lines: int) -> float:
        """First-order estimate of the emergent L2 hit rate."""
        return min(1.0, total_l2_lines / self.working_set_lines)


_REUSE_WINDOW = 8


class InstructionStream:
    """Deterministic per-warp instruction generator.

    Each warp owns a private sequential stream cursor (strided through the
    working set, giving DRAM row locality) plus a small reuse window that
    models register-blocked / shared-memory-adjacent access patterns (L1
    hits).  Randomness comes from :mod:`random` seeded per (workload, core,
    warp), so simulations are reproducible.
    """

    __slots__ = ("profile", "rng", "_window", "_cursor", "_stride_base")

    def __init__(
        self, profile: WorkloadProfile, core_id: int, warp_id: int, seed: int
    ) -> None:
        self.profile = profile
        self.rng = random.Random(
            (seed * 1_000_003 + core_id * 977 + warp_id) & 0x7FFFFFFF
        )
        self._window: List[int] = []
        ws = profile.working_set_lines
        # Spread warps across the working set so streams do not collide.
        self._stride_base = self.rng.randrange(ws)
        self._cursor = self._stride_base

    def _miss_path_line(self) -> int:
        p = self.profile
        if self.rng.random() < p.stream_prob:
            self._cursor = (self._cursor + 1) % p.working_set_lines
            return self._cursor
        line = self.rng.randrange(p.working_set_lines)
        self._cursor = line
        return line

    def _gen_lines(self, count: int) -> List[int]:
        p = self.profile
        out: List[int] = []
        for _ in range(count):
            if self._window and self.rng.random() < p.reuse_prob:
                out.append(self.rng.choice(self._window))
                continue
            line = self._miss_path_line()
            out.append(line)
            self._window.append(line)
            if len(self._window) > _REUSE_WINDOW:
                self._window.pop(0)
        return out

    def next(self) -> Instr:
        p = self.profile
        if self.rng.random() >= p.mem_rate:
            return ("c", None)
        lines = self._gen_lines(p.coalesce_lines)
        if self.rng.random() < p.write_fraction:
            return ("st", lines)
        return ("ld", lines)
