"""Trace-driven workloads: record and replay per-warp instruction streams.

The synthetic profiles approximate real kernels statistically; when an
actual memory trace is available (e.g. extracted from GPGPU-Sim or a
binary instrumentation tool), it can be replayed through the same core
model instead.

Format: one instruction per line, whitespace-separated::

    <core> <warp> c                 # compute instruction
    <core> <warp> ld <line> [...]   # load touching these cache lines
    <core> <warp> st <line> [...]   # store touching these cache lines

Lines starting with ``#`` are comments.  Replay is cyclic: when a warp's
stream is exhausted it restarts, so fixed-cycle simulations never starve.

``record_trace`` generates a trace file from any profile — useful both for
regression-pinning a workload and as a format example.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, TextIO, Tuple

from repro.workloads.profile import Instr, WorkloadProfile


class TraceStream:
    """Replays one warp's recorded instruction list (cyclically)."""

    __slots__ = ("instrs", "_pos")

    def __init__(self, instrs: List[Instr]) -> None:
        if not instrs:
            instrs = [("c", None)]
        self.instrs = instrs
        self._pos = 0

    def next(self) -> Instr:
        instr = self.instrs[self._pos]
        self._pos = (self._pos + 1) % len(self.instrs)
        return instr


class TraceWorkload:
    """A workload whose streams replay a recorded trace.

    Duck-types :class:`~repro.workloads.profile.WorkloadProfile`'s surface
    used by the GPU model (``name``, ``sensitivity``, ``working_set_lines``,
    ``make_stream``), so it drops into :class:`~repro.gpu.system.GPGPUSystem`.
    """

    def __init__(
        self,
        name: str,
        per_warp: Dict[Tuple[int, int], List[Instr]],
        sensitivity: str = "high",
        description: str = "trace-driven workload",
    ) -> None:
        if not per_warp:
            raise ValueError("trace contains no instructions")
        self.name = name
        self.sensitivity = sensitivity
        self.description = description
        self._per_warp = per_warp
        lines = [
            l
            for instrs in per_warp.values()
            for kind, ls in instrs
            if ls
            for l in ls
        ]
        self.working_set_lines = max(lines, default=15) + 1

    def make_stream(self, core_id: int, warp_id: int, seed: int) -> TraceStream:
        # Seed is irrelevant for replay; warps without recorded entries
        # fall back to the closest recorded warp of the same core, then to
        # an idle (compute-only) stream.
        instrs = self._per_warp.get((core_id, warp_id))
        if instrs is None:
            candidates = [
                w for (c, w) in self._per_warp if c == core_id
            ]
            if candidates:
                instrs = self._per_warp[(core_id, min(candidates))]
        return TraceStream(list(instrs) if instrs else [])

    @property
    def warps_recorded(self) -> int:
        return len(self._per_warp)

    @property
    def instructions_recorded(self) -> int:
        return sum(len(v) for v in self._per_warp.values())


def parse_trace(fh: TextIO, name: str = "trace") -> TraceWorkload:
    per_warp: Dict[Tuple[int, int], List[Instr]] = defaultdict(list)
    for lineno, raw in enumerate(fh, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise ValueError(f"line {lineno}: expected '<core> <warp> <op> ...'")
        try:
            core, warp = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(f"line {lineno}: bad core/warp ids") from None
        op = parts[2]
        if op == "c":
            per_warp[(core, warp)].append(("c", None))
        elif op in ("ld", "st"):
            if len(parts) < 4:
                raise ValueError(f"line {lineno}: {op} needs line addresses")
            try:
                lines = [int(x, 0) for x in parts[3:]]
            except ValueError:
                raise ValueError(f"line {lineno}: bad line address") from None
            per_warp[(core, warp)].append((op, lines))
        else:
            raise ValueError(f"line {lineno}: unknown op {op!r}")
    return TraceWorkload(name, dict(per_warp))


def load_trace(path: str, name: str = None) -> TraceWorkload:
    with open(path) as fh:
        return parse_trace(fh, name or path)


def record_trace(
    profile: WorkloadProfile,
    path: str,
    cores: int = 2,
    warps_per_core: int = 4,
    instructions_per_warp: int = 200,
    seed: int = 1,
) -> None:
    """Sample a profile's streams into a replayable trace file."""
    with open(path, "w") as fh:
        fh.write(f"# trace of profile {profile.name!r}, seed {seed}\n")
        for core in range(cores):
            for warp in range(warps_per_core):
                stream = profile.make_stream(core, warp, seed)
                for _ in range(instructions_per_warp):
                    kind, lines = stream.next()
                    if kind == "c":
                        fh.write(f"{core} {warp} c\n")
                    else:
                        addrs = " ".join(str(l) for l in lines)
                        fh.write(f"{core} {warp} {kind} {addrs}\n")
