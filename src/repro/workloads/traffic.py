"""Pure-NoC synthetic traffic for network-only experiments.

The Section-3 characterization experiments (and several unit tests) need to
drive a *single* network without the full GPU on top.  The generators here
produce the GPGPU reply pattern — few-to-many, long-packet-dominated — at a
controllable rate.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.noc.flit import Packet, PacketType, packet_size_for


class ReplyTrafficPattern:
    """Few-to-many reply traffic: MC nodes send long packets to CC nodes."""

    def __init__(
        self,
        mc_nodes: Sequence[int],
        cc_nodes: Sequence[int],
        read_reply_fraction: float = 0.85,
        line_bytes: int = 128,
        flit_bytes: int = 16,
        seed: int = 1,
    ) -> None:
        if not mc_nodes or not cc_nodes:
            raise ValueError("need at least one MC and one CC node")
        if not (0.0 <= read_reply_fraction <= 1.0):
            raise ValueError("read_reply_fraction in [0,1]")
        self.mc_nodes = list(mc_nodes)
        self.cc_nodes = list(cc_nodes)
        self.read_reply_fraction = read_reply_fraction
        self.line_bytes = line_bytes
        self.flit_bytes = flit_bytes
        self.rng = random.Random(seed)

    def make_packet(self, src: int, now: int, priority: int = 0) -> Packet:
        dest = self.rng.choice(self.cc_nodes)
        if self.rng.random() < self.read_reply_fraction:
            ptype = PacketType.READ_REPLY
        else:
            ptype = PacketType.WRITE_REPLY
        size = packet_size_for(ptype, self.line_bytes, self.flit_bytes)
        return Packet(ptype, src, dest, size, created_at=now, priority=priority)


class SyntheticTrafficGenerator:
    """Bernoulli packet generation per MC node at ``rate`` packets/cycle.

    Drives a network (any object with ``offer``/``step``/``now``) and keeps
    simple accounting of offered/blocked packets so injection-bottleneck
    saturation can be measured directly.
    """

    def __init__(
        self,
        network,
        pattern: ReplyTrafficPattern,
        rate: float,
        priority_levels: int = 1,
        seed: int = 7,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.network = network
        self.pattern = pattern
        self.rate = rate
        self.priority = max(0, priority_levels - 1)
        self.rng = random.Random(seed)
        self.offered = 0
        self.blocked = 0
        # Per-MC backlog of packets that the NI refused (models data waiting
        # in the MC, i.e. the Fig. 12 stall condition).
        self._backlog: List[List[Packet]] = [[] for _ in self.pattern.mc_nodes]
        self.stall_cycles = 0

    def step(self) -> None:
        """Generate and offer traffic for the network's current cycle."""
        now = self.network.now
        for i, mc in enumerate(self.pattern.mc_nodes):
            backlog = self._backlog[i]
            if backlog:
                self.stall_cycles += 1
                if self.network.offer(mc, backlog[0]):
                    backlog.pop(0)
                    self.offered += 1
                else:
                    self.blocked += 1
            if self.rng.random() < self.rate:
                pkt = self.pattern.make_packet(mc, now, priority=self.priority)
                if not backlog and self.network.offer(mc, pkt):
                    self.offered += 1
                else:
                    backlog.append(pkt)

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()
            self.network.step()

    @property
    def backlog_packets(self) -> int:
        return sum(len(b) for b in self._backlog)
