"""The 30-benchmark suite (Rodinia + CUDA SDK stand-ins).

The paper evaluates 30 benchmarks with "varying sensitivity to the NoC
(9 highly sensitive, 11 medium, and 10 low)".  The profiles below mirror
that split.  Parameters are chosen so the *emergent* behaviour matches each
program's published characterization (memory-divergent graph traversal for
``bfs``, streaming stencils for ``hotspot``/``srad``, compute-bound kernels
for the SDK's options pricers, ...):

* high-sensitivity workloads are memory-intensive, read-dominated, and have
  footprints a few times the aggregate L2 (1 MB = 8192 lines), so replies
  stream from both L2 and GDDR at rates exceeding one narrow injection
  link — the regime where the reply-injection bottleneck binds;
* medium workloads either have moderate intensity or get significant L1/L2
  relief;
* low workloads are compute-bound or cache-resident.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profile import WorkloadProfile

_P = WorkloadProfile

# fmt: off
_SUITE: List[WorkloadProfile] = [
    # --- 9 highly NoC-sensitive -----------------------------------------
    _P("bfs",            "high", 0.42, 0.12, 2, 0.15, 24576, 0.30,
       "level-synchronous graph traversal; divergent, read-heavy"),
    _P("mummerGPU",      "high", 0.38, 0.08, 2, 0.20, 32768, 0.35,
       "suffix-tree matching; pointer chasing over a large tree"),
    _P("kmeans",         "high", 0.36, 0.18, 1, 0.25, 16384, 0.80,
       "clustering; streaming feature matrix every iteration"),
    _P("pathfinder",     "high", 0.40, 0.15, 1, 0.22, 12288, 0.85,
       "dynamic programming over a wide grid; row streaming"),
    _P("hotspot",        "high", 0.38, 0.20, 1, 0.28, 12288, 0.85,
       "thermal stencil; two grids streamed per step"),
    _P("srad",           "high", 0.37, 0.22, 1, 0.25, 16384, 0.85,
       "speckle-reducing anisotropic diffusion stencil"),
    _P("streamcluster",  "high", 0.35, 0.10, 1, 0.18, 24576, 0.70,
       "online clustering; repeated full-dataset scans"),
    _P("particlefilter", "high", 0.33, 0.15, 2, 0.20, 16384, 0.50,
       "sequential Monte Carlo; scattered particle updates"),
    _P("b+tree",         "high", 0.36, 0.10, 2, 0.18, 20480, 0.40,
       "batched B+-tree lookups; pointer chasing"),

    # --- 11 medium --------------------------------------------------------
    # Demand sits near the baseline reply-injection capacity (marginally
    # bound): ARI helps, but moderately.
    _P("backprop",       "medium", 0.10, 0.25, 1, 0.65, 8192, 0.80,
       "neural net training; layer weight streaming"),
    _P("blackScholes",   "medium", 0.11, 0.30, 1, 0.65, 10240, 0.90,
       "options pricing; streaming reads and writes"),
    _P("gaussian",       "medium", 0.10, 0.20, 1, 0.68, 6144, 0.85,
       "gaussian elimination; shrinking active matrix"),
    _P("heartwall",      "medium", 0.07, 0.15, 2, 0.75, 8192, 0.60,
       "image tracking; window reuse"),
    _P("hybridsort",     "medium", 0.11, 0.35, 1, 0.67, 10240, 0.70,
       "bucket+merge sort; read/write balanced"),
    _P("lavaMD",         "medium", 0.09, 0.12, 1, 0.62, 6144, 0.65,
       "molecular dynamics; neighbor-box reuse"),
    _P("lud",            "medium", 0.10, 0.20, 1, 0.68, 6144, 0.80,
       "LU decomposition; blocked matrix"),
    _P("nw",             "medium", 0.10, 0.22, 1, 0.65, 8192, 0.85,
       "Needleman-Wunsch alignment; diagonal wavefront"),
    _P("histogram",      "medium", 0.07, 0.30, 2, 0.74, 8192, 0.40,
       "scattered increments to shared bins"),
    _P("reduction",      "medium", 0.12, 0.10, 1, 0.70, 10240, 0.95,
       "tree reduction; streaming then shrinking"),
    _P("scan",           "medium", 0.11, 0.28, 1, 0.68, 8192, 0.95,
       "prefix sum; two streaming passes"),

    # --- 10 low ---------------------------------------------------------------
    # Demand stays below baseline injection capacity: the bottleneck never
    # binds, so ARI changes little (compute-bound / cache-resident kernels).
    _P("myocyte",        "low", 0.040, 0.15, 1, 0.75, 2048, 0.70,
       "ODE solver; tiny state, compute bound"),
    _P("nn",             "low", 0.055, 0.05, 1, 0.70, 3072, 0.80,
       "k-nearest neighbors; small record file"),
    _P("leukocyte",      "low", 0.045, 0.10, 1, 0.75, 2048, 0.70,
       "cell tracking; heavy per-pixel compute"),
    _P("monteCarlo",     "low", 0.035, 0.10, 1, 0.70, 2048, 0.60,
       "MC options pricing; RNG-compute dominated"),
    _P("binomialOptions","low", 0.030, 0.08, 1, 0.75, 1024, 0.70,
       "binomial lattice; in-register recurrence"),
    _P("quasirandomGen", "low", 0.040, 0.20, 1, 0.65, 2048, 0.80,
       "Sobol sequence generation; mostly writes"),
    _P("sortingNetworks","low", 0.060, 0.35, 1, 0.68, 4096, 0.75,
       "bitonic sort on shared-memory tiles"),
    _P("mergeSort",      "low", 0.060, 0.30, 1, 0.65, 4096, 0.70,
       "tile-local merge phases"),
    _P("convSeparable",  "low", 0.055, 0.18, 1, 0.72, 4096, 0.90,
       "separable convolution; apron reuse"),
    _P("scalarProd",     "low", 0.055, 0.06, 1, 0.68, 4096, 0.95,
       "dot products; streaming but low intensity"),
]
# fmt: on

SUITE: Dict[str, WorkloadProfile] = {p.name: p for p in _SUITE}

if len(SUITE) != 30:
    raise AssertionError("benchmark suite must contain exactly 30 workloads")

# Benchmarks the paper singles out in specific figures.
PAPER_FIG6_BENCHMARKS = ["pathfinder", "hotspot", "srad", "bfs"]
PAPER_FIG9_BENCHMARKS = ["bfs", "mummerGPU"]
PAPER_FIG15_BENCHMARKS = ["bfs", "b+tree", "hotspot", "pathfinder"]


def benchmark(name: str) -> WorkloadProfile:
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(SUITE)}"
        ) from None


def benchmark_names(sensitivity: str = None) -> List[str]:
    if sensitivity is None:
        return [p.name for p in _SUITE]
    return [p.name for p in _SUITE if p.sensitivity == sensitivity]


def by_sensitivity() -> Dict[str, List[str]]:
    return {
        s: benchmark_names(s) for s in ("high", "medium", "low")
    }
