# Convenience targets for the ARI reproduction.

PY ?= python

.PHONY: install test check flowcheck kernellint taintlint bench figures figures-paper telemetry-demo sweep-demo faults-demo search-demo kernel-demo kernel-equiv perfwatch perfwatch-demo clean-cache loc help

help:
	@echo "make install        editable install"
	@echo "make test           full unit/integration/property suite"
	@echo "make check          static model checks + code lints (+ ruff if installed)"
	@echo "make flowcheck      CI's repro-check job: model checks + all code lints, strict"
	@echo "make kernellint     just the kernel-soundness prover (byte-identity contract)"
	@echo "make taintlint      just the taint provers (cache-key soundness, zero overhead)"
	@echo "make bench          regenerate every figure at CI scale"
	@echo "make figures        regenerate figures at quick scale (9 benchmarks)"
	@echo "make figures-paper  full 30-benchmark regeneration (~1h)"
	@echo "make telemetry-demo time-series telemetry, baseline vs ARI"
	@echo "make sweep-demo     parallel design-space sweep across 2 workers"
	@echo "make faults-demo    degradation campaign: dead links, detour routing"
	@echo "make search-demo    design-space exploration: strategies vs the ARI default"
	@echo "make kernel-demo    reference vs activity kernel: same results, speedup"
	@echo "make kernel-equiv   CI's kernel-equiv job: byte-identity grid"
	@echo "make perfwatch      CI's perfwatch job: smoke benches -> ingest -> gate"
	@echo "make perfwatch-demo inject a synthetic regression and watch it flagged"
	@echo "make clean-cache    drop the simulation result cache"
	@echo "make loc            count lines of code"

install:
	pip install -e .[test]

test:
	$(PY) -m pytest tests/

# Ruff (when available) plus the CI repro-check job.
check:
	@command -v ruff >/dev/null 2>&1 && ruff check src tests || \
		echo "ruff not installed; skipping style pass"
	$(MAKE) flowcheck

# Mirrors CI's `repro-check` job exactly: the pre-run model checks for
# every registered scheme, then all code lints (determinism, unit
# inference, credit conservation, pool captures, kernel soundness,
# taint provers) strict against the committed staticcheck-baseline.json.
flowcheck:
	PYTHONPATH=src $(PY) -m repro check --all-schemes --json -
	PYTHONPATH=src $(PY) -m repro check --code src/repro --strict --json -

# Just the kernel-soundness prover: the reference/activity byte-identity
# contract, checked interprocedurally over the shared call graph.
kernellint:
	PYTHONPATH=src $(PY) -m repro check --code src/repro --no-baseline \
		--rule kernel-skip-unsound --rule kernel-wake-unscheduled \
		--rule kernel-state-untracked --strict

# Just the taint provers: cache-key soundness, the zero-overhead
# contract for disabled telemetry/fault subsystems, and environmental
# values (wall-clock/RNG) flowing into results.
taintlint:
	PYTHONPATH=src $(PY) -m repro check --code src/repro --no-baseline \
		--taint --strict

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

figures:
	$(PY) examples/reproduce_paper.py quick

figures-paper:
	$(PY) examples/reproduce_paper.py paper

# The Fig. 6 dynamic as time series: NI queues pin under the baseline,
# flatten under ARI.
telemetry-demo:
	$(PY) -m repro telemetry --benchmark bfs --scheme baseline \
		--cycles 800 --mesh 4 --interval 100
	$(PY) -m repro telemetry --benchmark bfs --scheme ari \
		--cycles 800 --mesh 4 --interval 100

# A small VC x speedup grid sharded across two worker processes.
sweep-demo:
	$(PY) -m repro sweep bfs ada-ari \
		--axis num_vcs=2,4 --axis injection_speedup=1,2 \
		--workers 2 --cycles 600 --mesh 4

# Kill 0/1/2 reply-mesh links (same cut for both schemes) and compare
# how gracefully baseline XY vs. ARI degrade with detour routing on.
faults-demo:
	$(PY) -m repro faults --benchmark bfs \
		--schemes xy-baseline,ada-ari --dead-links 0,1,2 \
		--cycles 600 --mesh 4 --workers 2

# Budgeted search over the ARI knob triple: a hillclimb hunts a config
# beating the paper defaults, then the same search replays for free from
# the result store and the trial ledger.
search-demo:
	PYTHONPATH=src $(PY) examples/search_demo.py

# Same spec through both simulation kernels: prints per-kernel wall
# time, the speedup, and a digest proving the results are identical.
kernel-demo:
	PYTHONPATH=src $(PY) examples/kernel_demo.py

# Mirrors CI's `kernel-equiv` job: the quick byte-identity grid.
kernel-equiv:
	PYTHONPATH=src $(PY) -m repro check --kernel-equiv

# Mirrors CI's `perfwatch` job: regenerate the three KPI bench tables
# (timers off), ingest them into the append-only perf ledger, then gate
# on regressions vs the rolling baseline and render the trend report.
perfwatch:
	$(PY) -m pytest -q --benchmark-disable \
		benchmarks/bench_simulator_speed.py \
		benchmarks/bench_parallel_sweep.py \
		benchmarks/bench_fault_degradation.py \
		benchmarks/bench_search.py
	PYTHONPATH=src $(PY) -m repro perfwatch ingest
	PYTHONPATH=src $(PY) -m repro perfwatch check --strict --json -
	PYTHONPATH=src $(PY) -m repro perfwatch report

# End-to-end detector demo on a throwaway ledger: fabricate a healthy
# history, halve one KPI at the head, and show the error finding with
# its baseline band and changed-axis attribution.
perfwatch-demo:
	PYTHONPATH=src $(PY) examples/perfwatch_demo.py

clean-cache:
	rm -rf results/cache results/cache.json

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
