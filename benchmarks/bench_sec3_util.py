"""Bench: regenerate the Sec. 3 link-utilization analysis."""

from repro.experiments import figures


def test_sec3_link_utilization(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.sec3_link_utilization(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("sec3_util", result)
    s = result["summary"]
    # Shape (paper: 0.39 vs 0.084 flits/cycle, a 4.5x gap): injection links
    # are several times busier than in-network reply links.
    assert s["ratio"] > 2.0
