"""Ablation: MC-side L2 miss merging (optional fidelity feature).

GPGPU-Sim's L2 merges concurrent misses to the same line; this simulator
makes that optional (``GPUConfig.l2_miss_merging``, default off — the
EXPERIMENTS.md numbers were measured without it).  This bench pins the
claim that it barely moves the results for the synthetic workloads, whose
warps stream mostly-disjoint address ranges.
"""

from repro.core.schemes import scheme
from repro.gpu.config import GPUConfig
from repro.gpu.system import GPGPUSystem
from repro.workloads.suite import benchmark


def _run(merge: bool):
    cfg = GPUConfig(l2_miss_merging=merge)
    system = GPGPUSystem(cfg, scheme("ada-ari"), benchmark("bfs"), seed=3)
    res = system.simulate(cycles=400, warmup=150)
    dram = sum(m.dram.requests_served for m in system.mcs)
    return res.ipc, dram


def test_l2_miss_merging_effect_is_small(benchmark, save_table):
    def runs():
        off = _run(False)
        on = _run(True)
        return {"off": off, "on": on}

    r = benchmark.pedantic(runs, rounds=1, iterations=1)
    save_table(
        "ablation_l2_mshr",
        {
            "table": f"merging off: ipc={r['off'][0]:.3f} dram={r['off'][1]}\n"
                     f"merging on : ipc={r['on'][0]:.3f} dram={r['on'][1]}",
            "summary": {"ipc_ratio": r["on"][0] / r["off"][0]},
            "paper": "GPGPU-Sim merges L2 misses; effect here is small",
        },
    )
    assert 0.9 < r["on"][0] / r["off"][0] < 1.1
    assert r["on"][1] <= r["off"][1]  # merging never adds DRAM fetches
