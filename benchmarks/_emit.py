"""Shared emitter for ``results/bench_tables/BENCH_*.json`` artifacts.

Every bench that persists a machine-readable table goes through
:func:`write_bench_json`, which wraps the measurements in the stamped
perfwatch envelope (schema version, UTC timestamp, git SHA, seed, host
info, config axes — see :mod:`repro.perfwatch.schema`).  Benches that
merge into an existing table (e.g. per-scenario best rates) read the
previous measurements back with :func:`load_bench_data`, which unwraps
envelopes and still accepts the bare pre-envelope dicts.
"""

import json
import os
from typing import Mapping, Optional

from repro.perfwatch import schema

TABLES_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "results", "bench_tables")
)


def bench_path(bench: str) -> str:
    """Canonical artifact path for a bench name."""
    return os.path.join(TABLES_DIR, f"BENCH_{bench}.json")


def bench_name(path: str) -> str:
    """``.../BENCH_simulator_speed.json`` -> ``simulator_speed``."""
    base = os.path.basename(path)
    if base.startswith("BENCH_"):
        base = base[len("BENCH_"):]
    if base.endswith(".json"):
        base = base[: -len(".json")]
    return base


def load_bench_data(path: str) -> dict:
    """The measurement dict of an existing artifact; ``{}`` when absent.

    Unwraps the stamped envelope; bare legacy dicts come back as-is, so
    merge-style benches survive the format migration transparently.
    """
    if not os.path.exists(path):
        return {}
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {}
    if schema.is_envelope(payload):
        return dict(payload["data"])
    return payload if isinstance(payload, dict) else {}


def write_bench_json(
    path: str,
    data: Mapping,
    *,
    seed: Optional[int] = None,
    config: Optional[Mapping] = None,
) -> str:
    """Write ``data`` at ``path`` inside a freshly stamped envelope."""
    path = os.path.abspath(path)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    envelope = schema.bench_envelope(
        bench_name(path), data, seed=seed, config=config
    )
    with open(path, "w") as fh:
        json.dump(envelope, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
