"""Resilience benchmark: graceful degradation under dead reply-mesh links.

Not a paper figure — exercises the :mod:`repro.faults` subsystem end to
end.  A small campaign kills 0/1/2 reply-mesh links (the same seeded cut
for every scheme) under baseline XY and full ARI, with detour routing
and per-cycle invariant auditing on, and records the degradation surface
to ``results/bench_tables/BENCH_fault_degradation.json``: delivered
fraction, latency inflation, drops, first-deadlock cycles, and audit
violations per (scheme, intensity) cell.

Assertions pin the resilience contract rather than exact numbers: zero
faults deliver everything at baseline latency, faulted cells stay
deadlock-free and violation-free with detour routing, and latency never
*improves* when links die.
"""

import os

import _emit
from repro.faults import CampaignConfig, run_campaign

DEGRADATION_JSON = os.path.join(
    os.path.dirname(__file__), "..", "results", "bench_tables",
    "BENCH_fault_degradation.json",
)

CONFIG = CampaignConfig(
    benchmark="bfs",
    schemes=("xy-baseline", "ada-ari"),
    dead_links=(0, 1, 2),
    seeds=(3,),
    cycles=400,
    warmup=150,
    mesh=4,
    fault_seed=7,
    detour=True,
    check_invariants="collect",
)


def test_fault_degradation_campaign(benchmark, save_table):
    report = benchmark.pedantic(
        lambda: run_campaign(CONFIG, use_cache=False), rounds=1, iterations=1
    )

    _emit.write_bench_json(
        os.path.abspath(DEGRADATION_JSON),
        report.to_dict(),
        seed=CONFIG.seeds[0],
    )

    zero_cells = [r for r in report.rows if r["dead_links"] == 0]
    fault_cells = [r for r in report.rows if r["dead_links"] > 0]
    save_table(
        "fault_degradation",
        {
            "table": report.render(),
            "summary": {
                "min_delivered": min(
                    r["delivered_fraction"] for r in report.rows
                ),
                "max_inflation": max(
                    r["latency_inflation"] for r in fault_cells
                ),
                "deadlocks": sum(
                    r["first_deadlock_cycle"] is not None for r in report.rows
                ),
            },
            "paper": "resilience infrastructure, not a paper figure",
        },
    )

    assert len(report.rows) == len(CONFIG.schemes) * len(CONFIG.dead_links)
    # Zero faults: everything delivered, inflation is 1.0 by construction.
    for row in zero_cells:
        assert row["delivered_fraction"] == 1.0, row
        assert row["dropped"] == 0, row
        assert row["latency_inflation"] == 1.0, row
    # Faulted cells: detour routing keeps the mesh alive and honest —
    # deadlock-free, audit-clean, still delivering traffic.
    for row in fault_cells:
        assert row["delivered_fraction"] > 0.0, row
        assert row["first_deadlock_cycle"] is None, row
        assert row["invariant_violations"] == 0, row
        # Detours can only lengthen paths (tolerance for latency noise
        # from packets that never met a dead link).
        assert row["latency_inflation"] >= 0.95, row
