"""Bench: regenerate Fig. 15 — VC-count sensitivity."""

from repro.experiments import figures


def test_fig15_vc_sensitivity(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig15_vc_sensitivity(scale="smoke", benchmarks=["bfs"]),
        rounds=1,
        iterations=1,
    )
    save_table("fig15", result)
    s = result["summary"]
    rows = result["rows"]["bfs"]
    # Shape (paper Sec. 7.5(3)): ARI beats the baseline at equal VC count,
    # and going 2->4 VCs helps ARI more than it helps the baseline.
    assert rows["2VC-ARI"] > rows["2VC-base"]
    assert rows["4VC-ARI"] > rows["4VC-base"]
    assert s["vc_gain_ari"] > s["vc_gain_baseline"]
