"""Benchmark-suite configuration.

Every bench regenerates one paper figure/table at ``smoke`` scale (CI-sized
simulation budgets), times the full regeneration, writes the resulting
series to ``results/bench_tables/<name>.txt``, and asserts the figure's
qualitative *shape* (who wins, roughly by how much).  Run the paper-scale
versions via ``examples/reproduce_paper.py``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results", "bench_tables")


@pytest.fixture
def save_table():
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, payload: dict) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(payload.get("table", "") + "\n\n")
            fh.write(f"summary: {payload.get('summary')}\n")
            fh.write(f"paper:   {payload.get('paper')}\n")

    return _save


@pytest.fixture(autouse=True)
def bench_cache(tmp_path):
    """Redirect the result store so benches never clobber paper-scale results.

    Each bench gets a fresh :class:`ResultStore` rooted in a temp dir,
    preloaded with the session-shared memory layer, so figure drivers
    that share a sweep (Figs. 10-13) reuse each other's runs while the
    first timing of each is still honest.
    """
    from repro.experiments.store import ResultStore, set_default_store

    store = ResultStore(
        os.path.join(
            os.environ.get("PYTEST_BENCH_CACHE_DIR", str(tmp_path)),
            "bench_cache",
        ),
        migrate=False,
    )
    store.preload(_session_cache)
    previous = set_default_store(store)
    yield
    _session_cache.clear()
    _session_cache.update(store.memory_snapshot())
    set_default_store(previous)


_session_cache: dict = {}
