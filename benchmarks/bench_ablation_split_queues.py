"""Ablation: how many split NI queues does the supply side need?

DESIGN.md design choice: the split NI defaults to one queue per injection
VC (4).  Sec. 4.1 notes "[W/N] narrow links" is the upper bound but "fewer
narrow links can be used without blocking" — this bench sweeps the count.
"""

from repro.experiments.api import run
from repro.experiments.runner import RunSpec, geometric_mean

BMS = ["bfs", "hotspot"]
BUDGET = dict(cycles=400, warmup=150)


def _gain(queues: int) -> float:
    vals = []
    for bm in BMS:
        base = run(RunSpec(bm, "ada-baseline", **BUDGET))
        ari = run(
            RunSpec(bm, "ada-ari", num_split_queues=queues, **BUDGET)
        )
        vals.append(ari.ipc / base.ipc)
    return geometric_mean(vals)


def test_split_queue_count(benchmark, save_table):
    def sweep():
        return {q: _gain(q) for q in (1, 2, 4)}

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "ablation_split_queues",
        {
            "table": "\n".join(f"{q} queues: {g:.3f}x" for q, g in gains.items()),
            "summary": gains,
            "paper": "Sec 4.1: multiple narrow links needed to match supply",
        },
    )
    # Shape: more split queues -> more parallel supply -> more gain, with
    # 4 queues (one per VC) the best of the sweep.
    assert gains[4] >= gains[2] >= gains[1] - 0.02
    assert gains[4] > gains[1]
