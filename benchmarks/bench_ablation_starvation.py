"""Ablation: starvation-threshold insensitivity (paper Sec. 5).

"A threshold of 1k cycles is used in our evaluation, but starvation of
this kind is rare, and our further simulation shows that the overall
performance is very insensitive to the threshold value."
"""

from repro.experiments.api import run
from repro.experiments.runner import RunSpec

BM = "bfs"
BUDGET = dict(cycles=400, warmup=150)


def test_starvation_threshold_insensitive(benchmark, save_table):
    def sweep():
        return {
            thr: run(
                RunSpec(BM, "ada-ari", starvation_threshold=thr, **BUDGET)
            ).ipc
            for thr in (100, 1000, 10000)
        }

    ipcs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        "ablation_starvation",
        {
            "table": "\n".join(f"threshold {t}: ipc {v:.3f}" for t, v in ipcs.items()),
            "summary": ipcs,
            "paper": "performance very insensitive to the threshold value",
        },
    )
    ref = ipcs[1000]
    for thr, ipc in ipcs.items():
        assert abs(ipc - ref) / ref < 0.10, (thr, ipc, ref)
