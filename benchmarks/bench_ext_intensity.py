"""Extension bench: ARI gain vs. memory-traffic intensity crossover.

Not a paper figure.  Probes the Sec. 2.2 claim that varying NoC traffic
intensity approximates the effect of traffic-changing techniques (cache
bypassing increases it, WarpPool reduces it): at low intensity the
injection bottleneck never binds and ARI is neutral; at high intensity the
gain saturates toward the injection-capacity ratio.
"""

from repro.experiments import figures


def test_ext_intensity_crossover(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.ext_intensity_sweep(
            scale="smoke", multipliers=(0.05, 0.3, 1.0)
        ),
        rounds=1,
        iterations=1,
    )
    save_table("ext_intensity", result)
    s = result["summary"]
    # Shape: at 5% of hotspot's memory rate the injection bottleneck never
    # binds (ARI neutral); at full rate ARI is clearly positive.
    assert s["x0.05"] < s["x1.0"]
    assert s["x0.05"] < 1.10
    assert s["x1.0"] > 1.10
