"""Performance benchmark: the design-space search service end to end.

Not a paper figure — measures `repro.search` throughput on a fixed
hillclimb search (budget 24 over the default ARI knob triple, activity
kernel) and writes trials/sec, the cache-hit fraction of a warm re-run,
and the best-objective-vs-budget curve into
``results/bench_tables/BENCH_search.json`` so the optimizer's speed and
its search *quality* are both tracked KPIs across PRs.

The cold pass simulates everything; the warm pass replays the identical
trial sequence against the now-populated ResultStore, so its hit
fraction must be 1.0 and its scores byte-identical — determinism and
cache accounting are asserted, not assumed.
"""

import os

import _emit
from repro.experiments.runner import RunSpec
from repro.search import Optimizer, SearchConfig, SearchSpace, parse_objective

SEARCH_JSON = os.path.join(
    os.path.dirname(__file__), "..", "results", "bench_tables",
    "BENCH_search.json",
)

BUDGET = 24
BATCH = 8
BASE = dict(cycles=300, warmup=75, mesh=4, kernel="activity")
MILESTONES = (8, 16, 24)


def _config():
    base = RunSpec("bfs", "ada-ari", **BASE)
    return SearchConfig(
        space=SearchSpace.default(base),
        objective=parse_objective("min:reply_latency"),
        strategy="hillclimb",
        seed=0,
        budget=BUDGET,
        batch=BATCH,
    )


def _run():
    return Optimizer(_config()).run(baseline=True)


def _phase(report):
    trials = report.evaluated + report.pruned
    return {
        "wall_s": report.wall_s,
        "trials_per_sec": trials / report.wall_s if report.wall_s else 0.0,
        "cache_hit_fraction": (
            report.cache_hits / (report.cache_hits + report.cache_misses)
            if report.cache_hits + report.cache_misses
            else 0.0
        ),
        "executed": report.executed,
    }


def _best_curve(report):
    """Best objective score after each budget milestone."""
    curve = {}
    for stop in MILESTONES:
        best = None
        for rank, (_, score) in enumerate(report.trajectory):
            if rank < stop:
                best = score
        curve[f"best_at_{stop}"] = best
    return curve


def test_search_throughput(benchmark, save_table):
    cold = _run()
    warm = benchmark.pedantic(_run, rounds=1, iterations=1)

    # Determinism: the warm pass replays the identical search.
    assert [(t.index, t.status, t.score) for t in warm.trials] == [
        (t.index, t.status, t.score) for t in cold.trials
    ]
    assert warm.trajectory == cold.trajectory
    # And every simulation was served from the store.
    assert warm.executed == 0
    assert warm.cache_misses == 0

    cold_phase, warm_phase = _phase(cold), _phase(warm)
    payload = {
        "budget": BUDGET,
        "space_points": _config().space.size,
        "evaluated": cold.evaluated,
        "pruned": cold.pruned,
        "cold": cold_phase,
        "warm": warm_phase,
        "best_objective": cold.best_score,
        "baseline_objective": cold.baseline_score,
        **_best_curve(cold),
    }
    _emit.write_bench_json(
        os.path.abspath(SEARCH_JSON), payload,
        config={**BASE, "budget": BUDGET, "batch": BATCH,
                "strategy": "hillclimb", "objective": "min:reply_latency"},
    )

    save_table(
        "search",
        {
            "table": "\n".join(
                f"{k:6s}: {v['wall_s']:.2f}s wall, "
                f"{v['trials_per_sec']:.1f} trials/s, "
                f"{v['cache_hit_fraction']:.0%} cached"
                for k, v in (("cold", cold_phase), ("warm", warm_phase))
            )
            + f"\nbest  : {cold.best_score:.4g} vs baseline "
            f"{cold.baseline_score:.4g} "
            f"({cold.pruned} pruned of {len(cold.trials)} proposals)",
            "summary": {
                "best_objective": cold.best_score,
                "warm_trials_per_sec": warm_phase["trials_per_sec"],
            },
            "paper": "search infrastructure, not a paper figure",
        },
    )

    assert warm_phase["cache_hit_fraction"] == 1.0
    assert cold.evaluated == BUDGET
    assert cold.pruned > 0  # the default space exercises the pruning gate
    # Search quality: the found config must beat the paper-default base.
    assert cold.improved_on_baseline() is True
