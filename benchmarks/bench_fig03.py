"""Bench: regenerate Fig. 3 — request vs. reply packet latency."""

from repro.experiments import figures


def test_fig3_request_vs_reply_latency(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig3_request_vs_reply_latency(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("fig03", result)
    rows = result["rows"]
    # Shape: for the NoC-bound benchmark the request network's latency far
    # exceeds the reply network's (the paper's backpressure signature).
    assert rows["bfs"]["ratio"] > 1.5
