"""Bench: regenerate Fig. 12 — data stall time in memory controllers."""

from repro.experiments import figures


def test_fig12_mc_stall_time(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig12_mc_stall_time(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("fig12", result)
    s = result["summary"]
    # Shape (paper: -47.5% XY, -67.8% Ada): ARI substantially reduces the
    # time reply data waits in the MC, and more so with adaptive routing.
    assert s["xy_ari_stall_reduction"] > 0.15
    assert s["ada_ari_stall_reduction"] > 0.25
