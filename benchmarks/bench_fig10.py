"""Bench: regenerate Fig. 10 — supply/consumption ablation."""

from repro.experiments import figures


def test_fig10_ablation(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig10_supply_consume_ablation(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("fig10", result)
    s = result["summary"]
    # Shape (paper Sec. 7.1): either half alone is roughly neutral;
    # both halves together unlock the big win; priority adds on top.
    assert s["acc-supply"] < 1.10
    assert s["acc-consume"] < 1.10
    assert s["acc-both"] > max(s["acc-supply"], s["acc-consume"])
    assert s["ada-ari"] >= s["acc-both"] - 0.02
