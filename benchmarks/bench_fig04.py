"""Bench: regenerate Fig. 4 — link-width sweep (request vs. reply)."""

from repro.experiments import figures


def test_fig4_link_width_sweep(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig4_link_width_sweep(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("fig04", result)
    s = result["summary"]
    # Shape (paper: +0.8% request vs +25.6% reply): widening the reply
    # network must help much more than widening the request network.
    assert s["ipc_256bit_reply"] > s["ipc_256bit_request"]
    assert s["ipc_256bit_reply"] > 1.05
    assert s["ipc_256bit_request"] < 1.10
