"""Bench: regenerate Fig. 13 — request/reply latency decomposition."""

from repro.experiments import figures


def test_fig13_latency_decomposition(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig13_latency_decomposition(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("fig13", result)
    rows = result["rows"]
    # Shape: ARI lowers both reply AND request latency on the NoC-bound
    # benchmark — although ARI changes nothing in the request network.
    assert rows["bfs"]["ada-ari.rep"] < rows["bfs"]["ada-baseline.rep"]
    assert rows["bfs"]["ada-ari.req"] < rows["bfs"]["ada-baseline.req"]
