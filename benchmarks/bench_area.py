"""Bench: regenerate the Sec. 6.1 area-overhead analysis."""

from repro.experiments import figures


def test_sec61_area(benchmark, save_table):
    result = benchmark.pedantic(figures.sec61_area, rounds=3, iterations=1)
    save_table("sec61_area", result)
    s = result["summary"]
    # Paper: 5.4% per revised NI + MC-router pair, 0.7% amortized.
    assert 0.03 < s["pair_overhead"] < 0.08
    assert s["network_overhead"] < 0.015
