"""Bench: regenerate Fig. 16 — ARI on top of DA2mesh."""

from repro.experiments import figures


def test_fig16_da2mesh(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig16_da2mesh(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("fig16", result)
    # Shape (paper: +16.4%): ARI composes with DA2mesh because DA2mesh
    # does not address the reply-injection feed.
    assert result["summary"]["da2mesh+ari_vs_da2mesh"] > 1.05
