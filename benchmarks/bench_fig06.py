"""Bench: regenerate Fig. 6 — NI injection queue occupancy vs. capacity."""

from repro.experiments import figures


def test_fig6_queue_occupancy(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig6_queue_occupancy(
            scale="smoke", capacities_pkts=(4, 16, 48)
        ),
        rounds=1,
        iterations=1,
    )
    save_table("fig06", result)
    # Shape: occupancy tracks capacity (packets pile up at the injection
    # point no matter how much buffering is added) — the bottleneck proof.
    for bm, series in result["rows"].items():
        assert series["16"] > series["4"] * 1.5
        assert series["48"] > series["16"] * 1.5
