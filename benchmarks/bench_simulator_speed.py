"""Performance benchmark: raw simulator throughput.

Not a paper figure — a performance-regression guard for the simulator
itself. Times fixed-size full-system and NoC-only stepping so a future
change that slows the hot loop shows up in `--benchmark-compare` runs.
"""

import pytest

from repro.core.schemes import scheme
from repro.gpu.config import GPUConfig
from repro.gpu.system import GPGPUSystem
from repro.noc import Network, NetworkConfig
from repro.noc.topology import default_placement
from repro.workloads.suite import benchmark as get_benchmark
from repro.workloads.traffic import ReplyTrafficPattern, SyntheticTrafficGenerator


def test_full_system_cycles_per_second(benchmark):
    def build_and_run():
        system = GPGPUSystem(
            GPUConfig(), scheme("ada-ari"), get_benchmark("bfs"), seed=1
        )
        system.prewarm_caches()
        system.run(300)
        return system.now

    cycles = benchmark.pedantic(build_and_run, rounds=3, iterations=1)
    assert cycles == 300


def test_noc_only_cycles_per_second(benchmark):
    def build_and_run():
        mcs, ccs = default_placement(6, 6, 8)
        net = Network(
            NetworkConfig(width=6, height=6, routing="adaptive",
                          accelerated_nodes=set(mcs))
        )
        gen = SyntheticTrafficGenerator(
            net, ReplyTrafficPattern(mcs, ccs, seed=2), rate=0.15, seed=3
        )
        gen.run(1000)
        return net.now

    cycles = benchmark.pedantic(build_and_run, rounds=3, iterations=1)
    assert cycles == 1000


def test_idle_network_is_cheap(benchmark):
    """Idle routers must be skipped: stepping an empty 6x6 mesh for 5000
    cycles should be orders of magnitude faster than a loaded one."""

    def run_idle():
        net = Network(NetworkConfig(width=6, height=6))
        net.run(5000)
        return net.now

    cycles = benchmark.pedantic(run_idle, rounds=3, iterations=1)
    assert cycles == 5000
