"""Performance benchmark: raw simulator throughput.

Not a paper figure — a performance-regression guard for the simulator
itself. Times fixed-size full-system and NoC-only stepping so a future
change that slows the hot loop shows up in `--benchmark-compare` runs.

Each test also feeds a :class:`~repro.telemetry.HostProfiler` and merges
its best observed rates into ``results/bench_tables/BENCH_simulator_speed.json``
(cycles/sec, packets/sec per scenario), so the simulator's perf
trajectory is machine-readable across PRs.
"""

import os

import pytest

import _emit
from repro.core.schemes import scheme
from repro.gpu.config import GPUConfig
from repro.gpu.system import GPGPUSystem
from repro.noc import Network, NetworkConfig
from repro.noc.topology import default_placement
from repro.telemetry import HostProfiler
from repro.workloads.suite import benchmark as get_benchmark
from repro.workloads.traffic import ReplyTrafficPattern, SyntheticTrafficGenerator

SPEED_JSON = os.path.join(
    os.path.dirname(__file__), "..", "results", "bench_tables",
    "BENCH_simulator_speed.json",
)


def _record_speed(scenario: str, profiler: HostProfiler) -> None:
    """Merge this scenario's best observed rates into the speed JSON."""
    entry = {
        "cycles_per_sec": profiler.rate("cycles", "measure"),
        "packets_per_sec": profiler.rate("packets", "measure"),
        "wall_s": profiler.phase_seconds("measure"),
        "cycles": profiler.counters.get("cycles", 0),
        "packets": profiler.counters.get("packets", 0),
    }
    path = os.path.abspath(SPEED_JSON)
    data = _emit.load_bench_data(path)
    prev = data.get(scenario)
    # pedantic() re-runs the scenario; keep the best (least-noisy) rate.
    if prev is None or entry["cycles_per_sec"] > prev.get("cycles_per_sec", 0):
        data[scenario] = entry
    _emit.write_bench_json(path, data)


def _annotate_kernel_speedup(activity_scenario: str, ref_scenario: str) -> None:
    """Record activity/reference rate ratio inside the activity row.

    Both rows are measured back-to-back in one process, so the ratio is
    far less host-noisy than either raw rate — it is the metric the
    perfwatch ledger gates (``*kernel_speedup``).
    """
    path = os.path.abspath(SPEED_JSON)
    data = _emit.load_bench_data(path)
    act, ref = data.get(activity_scenario), data.get(ref_scenario)
    if act and ref and ref.get("cycles_per_sec"):
        act["kernel_speedup"] = (
            act["cycles_per_sec"] / ref["cycles_per_sec"]
        )
        _emit.write_bench_json(path, data)


def _run_full_system(scenario: str, kernel=None) -> int:
    system = GPGPUSystem(
        GPUConfig(), scheme("ada-ari"), get_benchmark("bfs"), seed=1,
        kernel=kernel,
    )
    system.prewarm_caches()
    prof = HostProfiler()
    with prof.phase("measure"):
        system.run(300)
    prof.count("cycles", 300)
    prof.count(
        "packets",
        system.request_net.stats.packets_delivered
        + system.reply_net.stats.packets_delivered,
    )
    _record_speed(scenario, prof)
    return system.now


def test_full_system_cycles_per_second(benchmark):
    cycles = benchmark.pedantic(
        lambda: _run_full_system("full_system"), rounds=3, iterations=1
    )
    assert cycles == 300


def test_full_system_activity_kernel(benchmark):
    cycles = benchmark.pedantic(
        lambda: _run_full_system("full_system_activity", kernel="activity"),
        rounds=3, iterations=1,
    )
    assert cycles == 300
    _annotate_kernel_speedup("full_system_activity", "full_system")


def test_noc_only_cycles_per_second(benchmark):
    def build_and_run():
        mcs, ccs = default_placement(6, 6, 8)
        net = Network(
            NetworkConfig(width=6, height=6, routing="adaptive",
                          accelerated_nodes=set(mcs))
        )
        gen = SyntheticTrafficGenerator(
            net, ReplyTrafficPattern(mcs, ccs, seed=2), rate=0.15, seed=3
        )
        prof = HostProfiler()
        with prof.phase("measure"):
            gen.run(1000)
        prof.count("cycles", 1000)
        prof.count("packets", net.stats.packets_delivered)
        _record_speed("noc_only", prof)
        return net.now

    cycles = benchmark.pedantic(build_and_run, rounds=3, iterations=1)
    assert cycles == 1000


def _run_idle(scenario: str, kernel=None) -> int:
    net = Network(NetworkConfig(width=6, height=6), kernel=kernel)
    prof = HostProfiler()
    with prof.phase("measure"):
        net.run(5000)
    prof.count("cycles", 5000)
    _record_speed(scenario, prof)
    return net.now


def test_idle_network_is_cheap(benchmark):
    """Idle routers must be skipped: stepping an empty 6x6 mesh for 5000
    cycles should be orders of magnitude faster than a loaded one."""
    cycles = benchmark.pedantic(
        lambda: _run_idle("idle_mesh"), rounds=3, iterations=1
    )
    assert cycles == 5000


def test_idle_mesh_activity_kernel(benchmark):
    cycles = benchmark.pedantic(
        lambda: _run_idle("idle_mesh_activity", kernel="activity"),
        rounds=3, iterations=1,
    )
    assert cycles == 5000
    _annotate_kernel_speedup("idle_mesh_activity", "idle_mesh")


def test_speed_json_written():
    """The machine-readable perf artifact exists and has the right shape."""
    prof = HostProfiler()
    with prof.phase("measure"):
        Network(NetworkConfig(width=4, height=4)).run(100)
    prof.count("cycles", 100)
    _record_speed("smoke_4x4", prof)
    payload = _emit.load_bench_data(os.path.abspath(SPEED_JSON))
    assert "smoke_4x4" in payload
    assert payload["smoke_4x4"]["cycles_per_sec"] > 0
    # The on-disk artifact is a stamped envelope, not a bare dict.
    import json

    from repro.perfwatch import schema

    with open(os.path.abspath(SPEED_JSON)) as fh:
        envelope = json.load(fh)
    assert schema.is_envelope(envelope)
    assert envelope["bench"] == "simulator_speed"
