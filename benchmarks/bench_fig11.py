"""Bench: regenerate Fig. 11 — the headline five-scheme IPC comparison."""

from repro.experiments import figures


def test_fig11_scheme_comparison(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig11_scheme_comparison(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("fig11", result)
    s = result["summary"]
    # Shape (paper: XY-ARI +8%; Ada-Base <= XY-Base; MultiPort ~+2%;
    # Ada-ARI +15.4% with ~1/3 of benchmarks near 1.4x).
    assert s["xy-ari"] > 1.03
    assert s["ada-baseline"] <= 1.02
    assert 0.98 < s["ada-multiport_vs_ada-baseline"] < 1.12
    assert s["ada-ari_vs_ada-baseline"] > 1.08
    assert s["ada-ari"] > s["ada-multiport"]
