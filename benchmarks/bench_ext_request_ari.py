"""Extension bench: request-side ARI adds ~nothing (reply side is the
bottleneck, as the paper argues throughout Sec. 3)."""

from repro.experiments import figures


def test_ext_request_side_ari(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.ext_request_side_ari(scale="smoke", benchmarks=["bfs"]),
        rounds=1,
        iterations=1,
    )
    save_table("ext_request_ari", result)
    s = result["summary"]
    # Reply-side ARI delivers the gain; adding request-side ARI on top
    # moves IPC by at most a few percent either way.
    assert s["ada-ari"] > 1.10
    assert abs(s["ada-ari-both"] - s["ada-ari"]) < 0.08
