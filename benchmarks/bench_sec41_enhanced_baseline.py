"""Sec. 4.1: the enhanced baseline vs. GPGPU-Sim's narrow-link default.

The paper widens the MC->NI link in its baseline "to avoid giving unfair
advantage to our proposed design".  This bench verifies the narrow default
is indeed slower (so the enhanced baseline is the conservative comparison
point) — and that ARI's gain is measured against the *enhanced* one.
"""

from repro.experiments.api import run
from repro.experiments.runner import RunSpec

BM = "bfs"
BUDGET = dict(cycles=400, warmup=150)


def test_enhanced_baseline_is_conservative(benchmark, save_table):
    def runs():
        return {
            name: run(RunSpec(BM, name, **BUDGET)).ipc
            for name in ("xy-naive-baseline", "xy-baseline", "xy-ari")
        }

    ipcs = benchmark.pedantic(runs, rounds=1, iterations=1)
    save_table(
        "sec41_enhanced_baseline",
        {
            "table": "\n".join(f"{k}: ipc {v:.3f}" for k, v in ipcs.items()),
            "summary": ipcs,
            "paper": "enhanced baseline >= GPGPU-Sim default; ARI compared "
                     "against the enhanced one",
        },
    )
    assert ipcs["xy-baseline"] >= ipcs["xy-naive-baseline"] * 0.98
    assert ipcs["xy-ari"] > ipcs["xy-baseline"]
