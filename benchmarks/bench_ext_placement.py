"""Extension bench: MC placement study (Table I's diamond choice)."""

from repro.experiments import figures


def test_ext_mc_placement(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.ext_mc_placement(scale="smoke", benchmarks=["bfs"]),
        rounds=1,
        iterations=1,
    )
    save_table("ext_placement", result)
    rows = result["rows"]
    # Shape: diamond is the strongest baseline (that is why the paper uses
    # it), and ARI still wins on top of every placement.
    assert rows["diamond"]["baseline_ipc"] >= rows["column"]["baseline_ipc"]
    for pl in ("diamond", "edge", "column"):
        assert rows[pl]["ari_gain"] > 1.0
