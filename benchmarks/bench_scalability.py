"""Bench: regenerate the Sec. 7.5(2) scalability study."""

from repro.experiments import figures


def test_sec75_scalability(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.sec75_scalability(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("sec75_scalability", result)
    rows = result["rows"]
    # Shape (paper: +3.7% / +15.4% / +24.7%, growing with mesh size).  In
    # this reproduction the trend holds for the classes whose demand only
    # crosses the injection capacity on larger meshes (medium/low); the
    # high-sensitivity synthetics saturate every size (see EXPERIMENTS.md),
    # so assert the trend on the medium class plus a solid 8x8 gain overall.
    assert rows["8x8"]["medium"] >= rows["4x4"]["medium"]
    assert rows["8x8"]["all"] > 1.10
