"""Bench: regenerate Fig. 5 — flit-weighted packet-type mix."""

from repro.experiments import figures


def test_fig5_packet_type_mix(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig5_packet_type_mix(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("fig05", result)
    # Shape (paper: replies are 72.7% of NoC flits): reply traffic dominates
    # because each 1-flit read request returns a 9-flit read reply.
    assert result["summary"]["mean_reply_flit_share"] > 0.55
    for bm, mix in result["rows"].items():
        assert mix["read_reply"] > mix["read_request"]
