"""Performance benchmark: parallel sweep executor vs. serial execution.

Not a paper figure — measures the throughput of the process-pool
:class:`~repro.experiments.executor.SweepExecutor` on a 16-run grid and
writes serial vs. N-worker cycles/sec into
``results/bench_tables/BENCH_parallel_sweep.json``, so the executor's
scaling is machine-readable across PRs.

The speedup assertion is gated on host core count: on a >= 4-core host
the parallel run must be at least 2x faster than serial; smaller hosts
still record their numbers (with ``host_cpus`` so readers can tell) and
only assert record-for-record determinism.
"""

import dataclasses
import os

import _emit
from repro.experiments.executor import SweepExecutor
from repro.experiments.runner import RunSpec

SWEEP_JSON = os.path.join(
    os.path.dirname(__file__), "..", "results", "bench_tables",
    "BENCH_parallel_sweep.json",
)

BUDGET = dict(cycles=400, warmup=150, mesh=4, warps_per_core=4)
GRID_RUNS = 16
PARALLEL_WORKERS = min(4, os.cpu_count() or 1)


def _grid():
    """A 16-run grid: 4 seeds x 2 schemes x 2 VC counts."""
    return [
        RunSpec("bfs", scheme, seed=seed, num_vcs=vcs, **BUDGET)
        for seed in (1, 2, 3, 4)
        for scheme in ("xy-baseline", "ada-ari")
        for vcs in (2, 4)
    ]


def _strip_wall(result):
    d = dataclasses.asdict(result)
    for k in ("build_wall_s", "sim_wall_s", "sim_cycles_per_sec"):
        d["extras"].pop(k, None)
    return d


def _sweep(workers):
    ex = SweepExecutor(workers=workers, use_cache=False)
    results = ex.run_many(_grid())
    return results, ex.report


def test_parallel_sweep_throughput(benchmark, save_table):
    serial_results, serial_report = _sweep(workers=1)
    parallel_results, parallel_report = benchmark.pedantic(
        lambda: _sweep(workers=PARALLEL_WORKERS), rounds=1, iterations=1
    )

    # Determinism: parallel output is record-for-record identical.
    assert [_strip_wall(r) for r in parallel_results] == [
        _strip_wall(r) for r in serial_results
    ]

    speedup = (
        parallel_report.cycles_per_sec() / serial_report.cycles_per_sec()
        if serial_report.cycles_per_sec()
        else 0.0
    )
    payload = {
        "host_cpus": os.cpu_count() or 1,
        "grid_runs": GRID_RUNS,
        "sim_cycles_per_run": BUDGET["cycles"] + BUDGET["warmup"],
        "serial": {
            "workers": 1,
            "wall_s": serial_report.wall_s,
            "cycles_per_sec": serial_report.cycles_per_sec(),
            "runs_per_sec": serial_report.runs_per_sec(),
        },
        "parallel": {
            "workers": PARALLEL_WORKERS,
            "wall_s": parallel_report.wall_s,
            "cycles_per_sec": parallel_report.cycles_per_sec(),
            "runs_per_sec": parallel_report.runs_per_sec(),
        },
        "speedup": speedup,
    }
    _emit.write_bench_json(
        os.path.abspath(SWEEP_JSON), payload, config=dict(BUDGET)
    )

    save_table(
        "parallel_sweep",
        {
            "table": "\n".join(
                f"{k:8s}: {v['wall_s']:.2f}s wall, "
                f"{v['cycles_per_sec']:.0f} cyc/s ({v['workers']} workers)"
                for k, v in (("serial", payload["serial"]),
                             ("parallel", payload["parallel"]))
            ) + f"\nspeedup : {speedup:.2f}x on {payload['host_cpus']} cpus",
            "summary": {"speedup": speedup, "host_cpus": payload["host_cpus"]},
            "paper": "executor infrastructure, not a paper figure",
        },
    )

    assert len(parallel_results) == GRID_RUNS
    assert parallel_report.executed == GRID_RUNS
    # The 2x bar only makes sense when the host can actually run 4 workers.
    if payload["host_cpus"] >= 4:
        assert speedup >= 2.0, payload
