"""Bench: regenerate Fig. 14 — energy consumption."""

from repro.experiments import figures


def test_fig14_energy(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig14_energy(scale="smoke"),
        rounds=1,
        iterations=1,
    )
    save_table("fig14", result)
    # Shape (paper: ~4% less energy): ARI never costs much energy; at smoke
    # scale the window is short enough that in-flight traffic skews the
    # dynamic share, so the bound is loose (the paper-scale run in
    # EXPERIMENTS.md shows the ~4% saving).
    assert result["summary"]["mean_normalized_energy_ari"] < 1.12
