"""Bench: regenerate Fig. 9 — IPC vs. number of priority levels."""

from repro.experiments import figures


def test_fig9_priority_levels(benchmark, save_table):
    result = benchmark.pedantic(
        lambda: figures.fig9_priority_levels(
            scale="smoke", benchmarks=["bfs"], levels=(1, 2, 4)
        ),
        rounds=1,
        iterations=1,
    )
    save_table("fig09", result)
    rows = result["rows"]["bfs"]
    # Shape: two levels already capture most of the benefit; more levels do
    # not keep adding the same again (paper Fig. 9 flattens after 2).
    assert rows["2"] >= -0.02  # priority never badly hurts
    assert rows["4"] <= rows["2"] + 0.08
